// Regression tests for draw_backoff_wait (core/backoff.h).
//
// The original TxnRuntime::backoff jittered the doubled window into
// [window/2, 1.5*window) and returned that draw unclamped, so a wait could
// exceed the configured backoff_cap by up to 50 %.  The sweep below proves
// the shared helper never exceeds the cap for any attempt number, and pins
// the window/jitter semantics the three retry loops (QR runtime, TFA,
// Decent-STM) now share.
#include "core/backoff.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/simulator.h"

namespace qrdtm::core {
namespace {

TEST(Backoff, NeverExceedsCapAcrossAttemptSweep) {
  const sim::Tick base = sim::msec(5);
  const sim::Tick cap = sim::msec(200);
  Rng rng(42);
  // Sweep well past the exponent clamp (attempt 8) and past the point where
  // the unclamped jitter would overshoot: with window == cap, the old code
  // could return up to 1.5 * cap.
  for (std::uint32_t attempt = 0; attempt <= 24; ++attempt) {
    for (int draw = 0; draw < 2000; ++draw) {
      const sim::Tick wait = draw_backoff_wait(base, cap, attempt, rng);
      ASSERT_LE(wait, cap) << "attempt " << attempt << " draw " << draw;
    }
  }
}

TEST(Backoff, HighAttemptsActuallyReachTheCapRegion) {
  // The clamp must not flatten the distribution: once the window saturates
  // at the cap, draws above cap/2 (i.e. in the jitter's upper half) must
  // still occur, and some must land exactly at the clamp boundary's
  // neighborhood.
  const sim::Tick base = sim::msec(5);
  const sim::Tick cap = sim::msec(200);
  Rng rng(7);
  std::uint64_t above_half = 0, at_cap_region = 0;
  for (int draw = 0; draw < 4000; ++draw) {
    const sim::Tick wait = draw_backoff_wait(base, cap, 12, rng);
    if (wait > cap / 2) ++above_half;
    if (wait >= cap - cap / 10) ++at_cap_region;
  }
  EXPECT_GT(above_half, 0u);
  EXPECT_GT(at_cap_region, 0u);
}

TEST(Backoff, WindowDoublesUntilTheCap) {
  // For attempt a (exponent clamped at 8), the draw lies in
  // [window/2, min(1.5*window, cap)] with window = min(cap, base << a).
  const sim::Tick base = sim::usec(100);
  const sim::Tick cap = sim::msec(100);
  Rng rng(3);
  for (std::uint32_t attempt = 0; attempt <= 12; ++attempt) {
    const std::uint32_t exp = attempt < 8 ? attempt : 8;
    const sim::Tick window = std::min(cap, base << exp);
    for (int draw = 0; draw < 500; ++draw) {
      const sim::Tick wait = draw_backoff_wait(base, cap, attempt, rng);
      ASSERT_GE(wait, window / 2);
      ASSERT_LT(wait, std::min(window + window / 2, cap + 1));
    }
  }
}

TEST(Backoff, ZeroWindowMeansZeroWaitAndNoDraw) {
  // base == 0 or cap == 0 must not draw (rng.below(0) would assert) and
  // must return 0 so disabled backoff stays a no-op.
  Rng rng(1);
  EXPECT_EQ(draw_backoff_wait(0, sim::msec(10), 3, rng), 0u);
  EXPECT_EQ(draw_backoff_wait(sim::msec(10), 0, 3, rng), 0u);
}

TEST(Backoff, ExactlyOneDrawPerCall) {
  // The clamp fix must not change how much randomness is consumed: two Rngs
  // with the same seed, one fed through draw_backoff_wait and one advanced
  // by hand with the same below() bound, must stay in lockstep.
  const sim::Tick base = sim::msec(1);
  const sim::Tick cap = sim::msec(50);
  Rng a(99), b(99);
  for (std::uint32_t attempt = 0; attempt <= 10; ++attempt) {
    (void)draw_backoff_wait(base, cap, attempt, a);
    const std::uint32_t exp = attempt < 8 ? attempt : 8;
    (void)b.below(std::min(cap, base << exp));
    EXPECT_EQ(a.next(), b.next()) << "streams diverged at attempt " << attempt;
  }
}

}  // namespace
}  // namespace qrdtm::core
