// Fixture: every protection/lock acquisition names its lease epoch, and
// releases (locked_by = 0) need none.  Must produce no epoch diagnostics.
void vote(ReplicaStore& store, ObjectId id, TxnId txn, std::uint64_t now) {
  store.protect(id, txn, now);
}

void take_lock(LockEntry& e, TxnId txn, std::uint64_t now) {
  e.locked_by = txn;
  e.locked_at = now;
}

void drop_lock(LockEntry& e) {
  e.locked_by = 0;  // release: no lease needed
}
