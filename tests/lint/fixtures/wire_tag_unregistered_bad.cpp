// Fixture: a message tag that is never registered in the dispatch table --
// messages with this kind are dead letters at every server.
#include <cstdint>

constexpr MsgKind kPing = 0x01;
constexpr MsgKind kOrphan = 0x02;  // never registered

void install(RpcEndpoint& rpc) {
  rpc.register_service(kPing, [](NodeId, const Bytes& req) {
    return req;
  });
}
