// Fixture: every violation below carries a `qrdtm-lint: allow(...)`
// directive (same-line and preceding-line forms), so the file must lint
// clean under all three rule families.
#include <cstdlib>
#include <functional>
#include <unordered_map>

struct Hub {
  std::unordered_map<int, int> routes_;

  int seed_entropy() {
    // One-time seeding at process start, outside the simulation.
    // qrdtm-lint: allow(det-rand)
    return rand();
  }

  int checksum() {
    int h = 0;
    for (const auto& [k, v] : routes_) {  // qrdtm-lint: allow(det-unordered-iter)
      h += v;  // commutative
    }
    return h;
  }

  // Registration-time only.  qrdtm-lint: allow(hot-std-function)
  std::function<void(int)> on_route_;
};

Hub* boot() {
  // Startup allocation, freed at shutdown.  qrdtm-lint: allow(hot-naked-new)
  return new Hub();
}
