// Fixture: id-keyed containers (and pointer *values*) are fine; no
// det-pointer-key diagnostics expected.
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>

struct Node {
  std::uint64_t id;
};

struct Registry {
  std::map<std::uint64_t, Node*> by_id_;   // pointer value, not key
  std::set<std::uint64_t> seen_;
  std::unordered_map<std::uint64_t, int> ranks_;
};
