// Fixture: field declared 8 bytes wide but coded as u32 on both sides.
// Symmetric, so the stream stays aligned -- but large values truncate
// silently on the wire.
#include <cstdint>

struct Counter {
  std::uint64_t total = 0;

  void encode_into(Writer& w) const;
  static Counter decode(const Bytes& b);
};

void Counter::encode_into(Writer& w) const {
  w.u32(total);  // truncates
}

Counter Counter::decode(const Bytes& b) {
  Reader r(b);
  Counter c;
  c.total = r.u32();
  return c;
}
