// Fixture: MUST produce a hot-make-shared diagnostic.
#include <memory>

struct Undo {
  int steps;
};

std::shared_ptr<Undo> record(int steps) {
  return std::make_shared<Undo>(steps);  // hot-make-shared
}
