// Fixture: MUST produce hot-std-function diagnostics.
#include <functional>

struct Dispatcher {
  std::function<void(int)> on_event_;  // hot-std-function

  void fire(int v) {
    std::function<void(int)> local = on_event_;  // hot-std-function
    local(v);
  }
};
