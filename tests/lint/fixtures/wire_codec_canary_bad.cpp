// Canary fixture: a deliberate copy of the BatchVoteResponse codec shape
// from src/core/wire.cpp with the decode of the `stale` vector dropped.
// The analyzer MUST catch this -- it is the regression the codec-symmetry
// family exists to prevent (a voter silently losing its stale-object list
// would mask every batch conflict).
#include <cstdint>
#include <vector>

struct VoteReply {
  bool commit = false;
  std::vector<std::uint64_t> stale;

  void encode_into(Writer& w) const;
  static VoteReply decode(const Bytes& b);
};

void VoteReply::encode_into(Writer& w) const {
  w.reserve(w.size() + 1 + 4 + stale.size() * 8);
  w.boolean(commit);
  encode_vec(w, stale, [](Writer& w2, std::uint64_t id) { w2.u64(id); });
}

VoteReply VoteReply::decode(const Bytes& b) {
  Reader r(b);
  VoteReply v;
  v.commit = r.boolean();
  // BUG (deliberate): the `stale` vector is never decoded.
  r.expect_done();
  return v;
}
