// Fixture: two message tags sharing a value -- the dispatch table can only
// route one of them.
#include <cstdint>

constexpr MsgKind kVoteRequest = 0x10;
constexpr MsgKind kVoteConfirm = 0x10;  // collides with kVoteRequest
