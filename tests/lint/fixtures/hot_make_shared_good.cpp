// Fixture: stack ownership on the hot path; no hot-make-shared diagnostics
// expected.
struct Undo {
  int steps;
};

int replay(int steps) {
  Undo undo{steps};  // stack-owned, no refcounting
  return undo.steps;
}
