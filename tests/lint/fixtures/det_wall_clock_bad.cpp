// Fixture: MUST produce det-wall-clock diagnostics.
#include <chrono>
#include <ctime>

long host_time() {
  auto a = std::chrono::steady_clock::now();            // det-wall-clock
  auto b = std::chrono::system_clock::now();            // det-wall-clock
  auto c = std::chrono::high_resolution_clock::now();   // det-wall-clock
  long t = time(nullptr);                               // det-wall-clock
  (void)a; (void)b; (void)c;
  return t;
}
