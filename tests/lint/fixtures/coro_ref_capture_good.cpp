// Fixture: value captures in coroutine lambdas and by-reference captures in
// *plain* lambdas are fine; no coro-ref-capture diagnostics expected.
namespace sim {
template <class T>
struct Task {};
}  // namespace sim

struct Txn {
  int read(int);
};

sim::Task<void> build(Txn& t) {
  int local = 7;
  // Coroutine lambda with explicit value captures: the copies live in the
  // closure, which the caller owns for the coroutine's lifetime.
  auto by_value = [local](Txn& ct) -> sim::Task<void> {
    co_await ct.read(local);
  };
  // Plain (non-coroutine) lambda may capture by reference freely: it runs
  // synchronously inside the enclosing frame's lifetime.
  auto plain = [&local](int x) { return local + x; };
  (void)by_value;
  (void)plain(1);
  int arr[2] = {0, 1};       // subscripts must not parse as lambda intros
  (void)arr[local % 2];
  co_return;
}
