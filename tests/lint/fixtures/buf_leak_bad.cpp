// Fixture: a pooled buffer acquired and never released or moved out --
// the pool's working set shrinks by one buffer per call.
void build_payload(BufferPool& pool) {
  Bytes b = pool.acquire(64);
  b.push_back(0x01);
}  // b still owned here

// Leak on an early return while another path releases correctly.
void maybe_send(BufferPool& pool, bool ready) {
  Bytes b = pool.acquire(32);
  if (!ready) {
    return;  // leaks b
  }
  pool.release(std::move(b));
}
