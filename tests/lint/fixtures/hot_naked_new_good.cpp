// Fixture: placement new into pooled storage and operator-new declarations
// are fine; no hot-naked-new diagnostics expected.
#include <cstddef>
#include <new>

struct Event {
  int payload;
};

struct Slot {
  alignas(Event) unsigned char buf[sizeof(Event)];

  Event* emplace(int v) { return ::new (static_cast<void*>(buf)) Event{v}; }
};

struct Counted {
  static void* operator new(std::size_t n);  // declaration, not allocation
};
