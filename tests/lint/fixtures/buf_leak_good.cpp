// Fixture: every path either releases the buffer or moves ownership out.
// Must produce no buffer diagnostics.
Bytes build_payload(BufferPool& pool) {
  Bytes b = pool.acquire(64);
  b.push_back(0x01);
  return std::move(b);  // ownership moves to the caller
}

void send_or_drop(BufferPool& pool, bool ready) {
  Bytes b = pool.acquire(32);
  if (!ready) {
    pool.release(std::move(b));
    return;
  }
  pool.release(std::move(b));
}
