// Fixture: a declared wire field that neither encode writes nor decode
// reads -- it silently resets to its default across the wire.
#include <cstdint>

struct Lease {
  std::uint64_t holder = 0;
  std::uint64_t expiry = 0;  // never coded

  void encode_into(Writer& w) const;
  static Lease decode(const Bytes& b);
};

void Lease::encode_into(Writer& w) const {
  w.u64(holder);
}

Lease Lease::decode(const Bytes& b) {
  Reader r(b);
  Lease l;
  l.holder = r.u64();
  return l;
}
