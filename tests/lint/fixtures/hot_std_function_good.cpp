// Fixture: function pointers and templated callables are fine on hot
// paths; no hot-std-function diagnostics expected.
struct Dispatcher {
  using Handler = void (*)(void*, int);

  template <class F>
  void fire(F&& f, int v) {
    f(v);
    if (handler_) handler_(ctx_, v);
  }

  Handler handler_ = nullptr;
  void* ctx_ = nullptr;
};
