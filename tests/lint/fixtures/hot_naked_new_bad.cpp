// Fixture: MUST produce hot-naked-new diagnostics.
struct Event {
  int payload;
};

Event* emit(int v) {
  int* scratch = new int(v);  // hot-naked-new
  delete scratch;
  return new Event{v};        // hot-naked-new
}
