// Fixture: sends go through the RpcEndpoint helpers, which stamp the
// destination liveness epoch inside the transport.  Must produce no epoch
// diagnostics.
void ping(RpcEndpoint& rpc, NodeId dst, Bytes payload) {
  rpc.notify(dst, kPing, std::move(payload));
}

sim::Task<void> call_ping(RpcEndpoint& rpc, NodeId dst, Bytes payload) {
  auto fut = rpc.call(dst, kPing, std::move(payload), timeout());
  co_await fut;
}
