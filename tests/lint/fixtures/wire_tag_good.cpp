// Fixture: distinct tag values, all registered.  Must produce no codec
// diagnostics.
#include <cstdint>

constexpr MsgKind kPing = 0x01;
constexpr MsgKind kPong = 0x02;

void install(RpcEndpoint& rpc) {
  rpc.register_service(kPing, [](NodeId, const Bytes& req) { return req; });
  rpc.register_service(kPong, [](NodeId, const Bytes& req) { return req; });
}
