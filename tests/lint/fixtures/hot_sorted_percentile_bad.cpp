// Fixture: MUST produce a hot-sorted-percentile diagnostic.
#include <cstdint>

struct Percentiles;

double commit_p99(Percentiles& p);

double report(Percentiles& lat) {
  return commit_p99(lat);  // hot-sorted-percentile: sorts + allocates on query
}
