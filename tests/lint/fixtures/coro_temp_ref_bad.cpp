// Fixture: MUST produce coro-temp-ref diagnostics.
namespace sim {
template <class T>
struct Task {};
}  // namespace sim

struct Config {
  int retries;
};

sim::Task<void> with_config(const Config& cfg);
sim::Task<void> with_count(const int& n);

void spawn(sim::Task<void> t);

void launch() {
  // The braced temporary dies when launch() returns to its caller, but the
  // spawned coroutine keeps referencing it across suspensions.
  spawn(with_config(Config{3}));  // coro-temp-ref
  spawn(with_count(42));          // coro-temp-ref
}
