// Fixture: all uses happen while the buffer is owned; release is the last
// touch.  Must produce no buffer diagnostics.
void inspect(BufferPool& pool) {
  Bytes b = pool.acquire(8);
  b.push_back(0x03);
  b.push_back(0x04);
  pool.release(std::move(b));
}
