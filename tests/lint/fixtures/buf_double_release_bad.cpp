// Fixture: the same pooled buffer returned to the pool twice -- the pool
// hands the duplicate entry to two different callers later.
void relay(BufferPool& pool) {
  Bytes b = pool.acquire(16);
  pool.release(std::move(b));
  pool.release(std::move(b));  // double release
}
