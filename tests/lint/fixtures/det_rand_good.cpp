// Fixture: seeded qrdtm Rng streams are the sanctioned randomness source;
// no det-rand diagnostics expected.
#include <cstdint>

struct Rng {
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() { return state_ = state_ * 6364136223846793005ull + 1; }
  std::uint64_t state_;
};

std::uint64_t seeded_randomness(std::uint64_t seed) {
  Rng rng(seed);
  // An identifier merely *containing* the banned names must not match.
  std::uint64_t random_total = rng.next();
  return random_total;
}
