// Fixture: fixed-bucket histogram on the hot path; no hot-sorted-percentile
// diagnostics expected.
#include <cstdint>

struct LatencyHistogram {
  void record(std::uint64_t v);
};

void on_commit(LatencyHistogram& h, std::uint64_t latency) {
  h.record(latency);  // O(1), no allocation, no sort
}
