// Fixture: a symmetric codec pair, including a vector field delegated to
// named element codecs.  Must produce no codec diagnostics.
#include <cstdint>
#include <vector>

struct Entry {
  std::uint64_t id = 0;
  Bytes data;
};

struct Snapshot {
  std::uint32_t epoch = 0;
  std::vector<Entry> entries;

  void encode_into(Writer& w) const;
  static Snapshot decode(const Bytes& b);
};

void encode_entry(Writer& w, const Entry& e) {
  w.u64(e.id);
  w.blob(e.data);
}

Entry decode_entry(Reader& r) {
  Entry e;
  e.id = r.u64();
  e.data = r.blob();
  return e;
}

void Snapshot::encode_into(Writer& w) const {
  w.u32(epoch);
  encode_vec(w, entries, encode_entry);
}

Snapshot Snapshot::decode(const Bytes& b) {
  Reader r(b);
  Snapshot s;
  s.epoch = r.u32();
  s.entries = decode_vec<Entry>(r, decode_entry);
  r.expect_done();
  return s;
}
