// Fixture: MUST produce det-unordered-iter diagnostics.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

struct Store {
  std::unordered_map<std::uint64_t, int> entries_;
  std::unordered_set<std::uint64_t> ids_;

  int checksum() const {
    int h = 0;
    for (const auto& [id, v] : entries_) {  // det-unordered-iter
      h = h * 31 + v;                       // order-dependent!
    }
    for (std::uint64_t id : ids_) {         // det-unordered-iter
      h ^= static_cast<int>(id);
    }
    return h;
  }
};
