// Fixture: protection/lock acquisition without a lease stamp.  An
// unstamped protection can never be shed by the orphan-lock lease and
// wedges the object if its owner dies.
void vote(ReplicaStore& store, ObjectId id, TxnId txn) {
  store.protect(id, txn);  // no lease timestamp
}

void take_lock(LockEntry& e, TxnId txn) {
  e.locked_by = txn;  // no locked_at stamp anywhere near
  e.waiters = 0;
}
