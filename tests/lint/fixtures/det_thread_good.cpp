// Fixture: single-threaded kernel code; no det-thread diagnostics expected.
#include <cstdint>

struct Simulator {
  void step() { ++events_; }
  std::uint64_t events_ = 0;
};

// Identifiers containing the banned words must not match.
void run(Simulator& sim, int thread_count_hint) {
  (void)thread_count_hint;  // sweeps parallelise across Simulators, not within
  sim.step();
}
