// Fixture: release on exactly one path each; the post-branch state is
// Maybe-owned, which the analyzer never diagnoses.  Must produce no buffer
// diagnostics.
void relay(BufferPool& pool, bool fast) {
  Bytes b = pool.acquire(16);
  if (fast) {
    pool.release(std::move(b));
    return;
  }
  b.push_back(0x02);
  pool.release(std::move(b));
}
