// Fixture: raw net::Message construction outside the transport layer --
// bypasses Network::send's dst_epoch stamping, so a rejoining node's
// liveness-epoch fence never sees the message.
void ping(Network& net, NodeId dst) {
  Message m;  // raw envelope
  m.dst = dst;
  net.send(std::move(m));
}

void pong(Network& net, NodeId dst) {
  net.send(Message{.src = 0, .dst = dst});  // braced raw envelope
}
