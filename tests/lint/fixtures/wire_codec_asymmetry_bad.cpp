// Fixture: encode and decode disagree on the op sequence.  The second op
// encodes `stamp` as u64 but decode reads it as u32, so every field after
// it is parsed from the wrong offset.
#include <cstdint>

struct Ping {
  std::uint32_t seq = 0;
  std::uint64_t stamp = 0;

  void encode_into(Writer& w) const;
  static Ping decode(const Bytes& b);
};

void Ping::encode_into(Writer& w) const {
  w.u32(seq);
  w.u64(stamp);
}

Ping Ping::decode(const Bytes& b) {
  Reader r(b);
  Ping p;
  p.seq = r.u32();
  p.stamp = r.u32();  // wrong width: desynchronises the stream
  return p;
}
