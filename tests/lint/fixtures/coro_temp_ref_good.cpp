// Fixture: named arguments, and temporaries in *directly awaited* calls
// (which live until the full co_await expression completes), are fine; no
// coro-temp-ref diagnostics expected.
namespace sim {
template <class T>
struct Task {};
}  // namespace sim

struct Config {
  int retries;
};

sim::Task<void> with_config(const Config& cfg);
sim::Task<void> by_value(Config cfg);

void spawn(sim::Task<void> t);

sim::Task<void> launch() {
  Config cfg{3};
  spawn(with_config(cfg));          // named object outlives the statement...
  co_await with_config(Config{3});  // ...and awaited temporaries are safe
  spawn(by_value(Config{3}));       // value parameter: moved into the frame
}
