// Fixture: MUST produce det-thread diagnostics.
#include <atomic>
#include <mutex>
#include <thread>

int host_threads() {
  std::mutex m;                        // det-thread
  std::thread t([] {});                // det-thread
  thread_local int counter = 0;        // det-thread
  std::atomic<int> hits{0};            // det-thread
  t.join();
  std::lock_guard<std::mutex> g(m);    // det-thread
  return ++counter + hits.load();
}
