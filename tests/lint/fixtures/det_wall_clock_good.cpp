// Fixture: simulated time and member functions *named* time are fine; no
// det-wall-clock diagnostics expected.
#include <cstdint>

using Tick = std::uint64_t;

struct Simulator {
  Tick now() const { return now_; }
  Tick now_ = 0;
};

struct Sample {
  Tick time(int idx) const { return base + idx; }  // declaration, not a call
  Tick base = 0;
};

Tick simulated_time(const Simulator& sim, const Sample& s) {
  return sim.now() + s.time(3);  // member call, not ::time()
}
