// Fixture: buffer touched after its ownership went back to the pool; the
// pool may already have recycled it into another message.
void inspect(BufferPool& pool) {
  Bytes b = pool.acquire(8);
  pool.release(std::move(b));
  b.push_back(0x03);  // use after release
}
