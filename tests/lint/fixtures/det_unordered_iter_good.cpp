// Fixture: ordered-map iteration and point lookups into unordered maps are
// fine; no det-unordered-iter diagnostics expected.
#include <cstdint>
#include <map>
#include <unordered_map>

struct Store {
  std::map<std::uint64_t, int> ordered_;
  std::unordered_map<std::uint64_t, int> index_;

  int lookup_sum(const std::map<std::uint64_t, int>& keys) const {
    int total = 0;
    for (const auto& [id, v] : ordered_) {  // std::map: deterministic order
      total += v;
    }
    for (const auto& [id, v] : keys) {
      if (auto it = index_.find(id); it != index_.end()) total += it->second;
    }
    return total;
  }
};
