// Fixture: MUST produce coro-ref-capture diagnostics.
namespace sim {
template <class T>
struct Task {};
}  // namespace sim

struct Txn {
  int read(int);
};

sim::Task<void> build(Txn& t) {
  int local = 7;
  auto by_ref = [&](Txn& ct) -> sim::Task<void> {  // coro-ref-capture
    co_await ct.read(local);
  };
  auto named_ref = [&local](Txn& ct) -> sim::Task<void> {  // coro-ref-capture
    co_await ct.read(local);
  };
  auto implicit_this = [=]() -> sim::Task<void> {  // coro-ref-capture
    co_return;
  };
  (void)by_ref;
  (void)named_ref;
  (void)implicit_this;
  co_return;
}
