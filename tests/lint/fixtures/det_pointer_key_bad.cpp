// Fixture: MUST produce det-pointer-key diagnostics.
#include <map>
#include <set>
#include <unordered_map>

struct Node {
  int id;
};

struct Registry {
  std::map<Node*, int> ranks_;                 // det-pointer-key
  std::set<const Node*> seen_;                 // det-pointer-key
  std::unordered_map<void*, int> by_addr_;     // det-pointer-key
};
