// Fixture: MUST produce det-rand diagnostics.
#include <cstdlib>
#include <random>

int host_randomness() {
  std::random_device rd;                 // det-rand
  int x = rand() % 100;                  // det-rand
  srand(42);                             // det-rand
  std::mt19937 gen(rd());                // det-rand
  return x + static_cast<int>(gen());
}
