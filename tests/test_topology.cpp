// Metric-space topology tests: the Cluster option placing nodes on a unit
// square (cc DTM assumes a metric-space network, paper §I).
#include <gtest/gtest.h>

#include "common/serde.h"
#include "core/cluster.h"

namespace qrdtm::core {
namespace {

Bytes enc_i64(std::int64_t v) {
  Writer w;
  w.i64(v);
  return std::move(w).take();
}

std::int64_t dec_i64(const Bytes& b) {
  Reader r(b);
  return r.i64();
}

ClusterConfig grid_cfg() {
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.seed = 101;
  cfg.metric_space = true;
  cfg.runtime.mode = NestingMode::kClosed;
  return cfg;
}

TEST(Topology, MetricSpaceClusterCommitsAndConserves) {
  Cluster c(grid_cfg());
  ObjectId a = c.seed_new_object(enc_i64(50));
  ObjectId b = c.seed_new_object(enc_i64(50));
  for (int i = 0; i < 10; ++i) {
    c.spawn_client(static_cast<net::NodeId>(i % c.num_nodes()),
                   [a, b](Txn& t) -> sim::Task<void> {
                     std::int64_t va = dec_i64(co_await t.read_for_write(a));
                     std::int64_t vb = dec_i64(co_await t.read_for_write(b));
                     t.write(a, enc_i64(va - 1));
                     t.write(b, enc_i64(vb + 1));
                   });
  }
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, 10u);

  std::int64_t total = 0;
  c.spawn_client(0, [&](Txn& t) -> sim::Task<void> {
    total = dec_i64(co_await t.read(a)) + dec_i64(co_await t.read(b));
  });
  c.run_to_completion();
  EXPECT_EQ(total, 100);
}

TEST(Topology, MetricSpaceIsDeterministic) {
  auto run = []() {
    Cluster c(grid_cfg());
    ObjectId obj = c.seed_new_object(enc_i64(0));
    for (int i = 0; i < 6; ++i) {
      c.spawn_client(static_cast<net::NodeId>(i), [obj](Txn& t) -> sim::Task<void> {
        std::int64_t v = dec_i64(co_await t.read_for_write(obj));
        t.write(obj, enc_i64(v + 1));
      });
    }
    c.run_to_completion();
    return std::pair{c.duration(), c.simulator().events_executed()};
  };
  EXPECT_EQ(run(), run());
}

TEST(Topology, NodePlacementAffectsLatency) {
  // The same logical transaction takes different simulated time from
  // different client nodes under the metric model (distance matters),
  // whereas the uniform model is position-independent up to jitter.
  auto read_duration = [](bool metric, net::NodeId from) {
    ClusterConfig cfg;
    cfg.num_nodes = 13;
    cfg.seed = 102;
    cfg.metric_space = metric;
    cfg.link_jitter = 0;  // isolate the distance term
    Cluster c(cfg);
    ObjectId obj = c.seed_new_object(enc_i64(1));
    c.spawn_client(from, [obj](Txn& t) -> sim::Task<void> {
      (void)co_await t.read(obj);
    });
    c.run_to_completion();
    return c.duration();
  };
  // Uniform: identical durations from any client.
  EXPECT_EQ(read_duration(false, 3), read_duration(false, 9));
  // Metric: at least one pair of client positions differs.
  bool differs = false;
  sim::Tick base = read_duration(true, 0);
  for (net::NodeId n = 1; n < 13 && !differs; ++n) {
    differs = read_duration(true, n) != base;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace qrdtm::core
