// FaultPointRegistry semantics (arming, one-shot consumption, node
// targeting, suspend/resume steering, panic wiring) and the cluster-level
// Greengage torn-checkpoint regression the registry exists to steer.
#include <gtest/gtest.h>

#include <utility>

#include "core/cluster.h"
#include "core/faultpoint.h"
#include "core/history.h"

namespace qrdtm {
namespace {

TEST(FaultPoint, UnarmedFiresReturnNoneAndCountNothing) {
  FaultPointRegistry reg;
  EXPECT_EQ(reg.fire(fp::kServerVote, 3), FaultAction::kNone);
  EXPECT_EQ(reg.hits(fp::kServerVote), 0u);
  EXPECT_FALSE(reg.armed(fp::kServerVote));
}

TEST(FaultPoint, OneShotArmingConsumesOnFirstMatch) {
  FaultPointRegistry reg;
  reg.arm(fp::kServerVote, FaultAction::kSkip);
  EXPECT_TRUE(reg.armed(fp::kServerVote));
  EXPECT_EQ(reg.fire(fp::kServerVote, 0), FaultAction::kSkip);
  EXPECT_FALSE(reg.armed(fp::kServerVote)) << "default uses=1 is one-shot";
  EXPECT_EQ(reg.fire(fp::kServerVote, 0), FaultAction::kNone);
  EXPECT_EQ(reg.hits(fp::kServerVote), 1u);
}

TEST(FaultPoint, MultiUseArmingFiresExactlyUsesTimes) {
  FaultPointRegistry reg;
  reg.arm(fp::kServerVote, FaultAction::kSkip, FaultPointRegistry::kAnyNode,
          /*uses=*/3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(reg.fire(fp::kServerVote, 0), FaultAction::kSkip);
  }
  EXPECT_EQ(reg.fire(fp::kServerVote, 0), FaultAction::kNone);
  EXPECT_EQ(reg.hits(fp::kServerVote), 3u);
}

TEST(FaultPoint, UnlimitedArmingNeverConsumes) {
  FaultPointRegistry reg;
  reg.arm(fp::kServerVote, FaultAction::kSkip, FaultPointRegistry::kAnyNode,
          FaultPointRegistry::kUnlimited);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(reg.fire(fp::kServerVote, 0), FaultAction::kSkip);
  }
  EXPECT_TRUE(reg.armed(fp::kServerVote));
  EXPECT_EQ(reg.hits(fp::kServerVote), 100u);
}

TEST(FaultPoint, NodeTargetingIgnoresOtherNodesWithoutConsuming) {
  FaultPointRegistry reg;
  reg.arm(fp::kServerVote, FaultAction::kSkip, /*node=*/5);
  EXPECT_EQ(reg.fire(fp::kServerVote, 4), FaultAction::kNone);
  EXPECT_EQ(reg.hits(fp::kServerVote), 0u)
      << "a non-matching node must not consume the arming";
  EXPECT_EQ(reg.fire(fp::kServerVote, 5), FaultAction::kSkip);
  EXPECT_EQ(reg.hits(fp::kServerVote), 1u);
}

TEST(FaultPoint, RearmingReplacesTheAction) {
  FaultPointRegistry reg;
  reg.arm(fp::kServerVote, FaultAction::kSkip);
  reg.arm(fp::kServerVote, FaultAction::kSuspend);
  EXPECT_EQ(reg.fire(fp::kServerVote, 0), FaultAction::kSuspend);
}

TEST(FaultPoint, DisarmAndResetDropArmings) {
  FaultPointRegistry reg;
  reg.arm(fp::kServerVote, FaultAction::kSkip);
  reg.disarm(fp::kServerVote);
  EXPECT_EQ(reg.fire(fp::kServerVote, 0), FaultAction::kNone);
  reg.arm(fp::kLogPrepare, FaultAction::kSkip);
  reg.fire(fp::kLogPrepare, 0);
  reg.reset();
  EXPECT_EQ(reg.hits(fp::kLogPrepare), 0u);
  EXPECT_FALSE(reg.armed(fp::kLogPrepare));
}

TEST(FaultPoint, PanicInvokesTheHandlerWithTheHittingNode) {
  FaultPointRegistry reg;
  net::NodeId panicked = 999;
  reg.set_panic_handler([&](net::NodeId n) { panicked = n; });
  reg.arm(fp::kServerVote, FaultAction::kPanic, /*node=*/7);
  EXPECT_EQ(reg.fire(fp::kServerVote, 7), FaultAction::kPanic);
  EXPECT_EQ(panicked, 7u);
}

sim::Task<void> fire_and_park(FaultPointRegistry* reg, bool* done) {
  if (reg->fire(fp::kCommitBeforeConfirm, 0) == FaultAction::kSuspend) {
    co_await reg->suspend(fp::kCommitBeforeConfirm, 0);
  }
  *done = true;
}

TEST(FaultPoint, SuspendParksUntilResume) {
  sim::Simulator sim;
  FaultPointRegistry reg;
  reg.set_simulator(&sim);
  reg.arm(fp::kCommitBeforeConfirm, FaultAction::kSuspend);

  bool done = false;
  sim.spawn(fire_and_park(&reg, &done));
  sim.run();
  EXPECT_FALSE(done);
  EXPECT_EQ(reg.suspended(fp::kCommitBeforeConfirm), 1u);

  EXPECT_EQ(reg.resume(fp::kCommitBeforeConfirm), 1u);
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(reg.suspended(fp::kCommitBeforeConfirm), 0u);
}

}  // namespace
}  // namespace qrdtm

namespace qrdtm::core {
namespace {

TxnBody bump_body(ObjectId id) {
  return [id](Txn& t) -> sim::Task<void> {
    Bytes b = co_await t.read_for_write(id);
    b[0] += 1;
    t.write(id, b);
  };
}

sim::Task<void> run_bounded(Cluster* c, net::NodeId node, TxnBody body,
                            bool* committed) {
  *committed = co_await c->runtime(node).run_transaction_bounded(
      std::move(body), 50);
}

// A panic point is a crash at its protocol boundary: only the hitting node
// dies, and the protocol rides it out like any other fail-stop.
TEST(FaultPointCluster, PanicKillsOnlyTheTargetNode) {
  ClusterConfig cfg;
  cfg.quorum = QuorumKind::kFlatFailureAware;
  cfg.seed = 31;
  Cluster c(cfg);
  const ObjectId obj = c.seed_new_object(Bytes{1});

  c.fault_points().arm(fp::kServerVote, FaultAction::kPanic, /*node=*/6);
  bool committed = false;
  c.simulator().spawn(run_bounded(&c, 0, bump_body(obj), &committed));
  c.run_to_completion();

  EXPECT_GE(c.fault_points().hits(fp::kServerVote), 1u);
  EXPECT_FALSE(c.network().alive(6)) << "the panicking node must be dead";
  for (std::uint32_t n = 0; n < c.num_nodes(); ++n) {
    if (n == 6) continue;
    EXPECT_TRUE(c.network().alive(static_cast<net::NodeId>(n)))
        << "panic must not touch node " << n;
  }
  EXPECT_TRUE(committed)
      << "a failure-aware quorum must commit around the crashed voter";
}

// The coordinator parks in the vote->confirm window and nothing commits
// until the test releases it -- the steering primitive every torn-checkpoint
// scenario builds on.
TEST(FaultPointCluster, CommitParksInTheVoteConfirmWindow) {
  ClusterConfig cfg;
  cfg.num_nodes = 7;
  cfg.quorum = QuorumKind::kMajority;
  cfg.seed = 32;
  Cluster c(cfg);
  const ObjectId obj = c.seed_new_object(Bytes{1});

  c.fault_points().arm(fp::kCommitBeforeConfirm, FaultAction::kSuspend,
                       /*node=*/0);
  bool committed = false;
  c.simulator().spawn(run_bounded(&c, 0, bump_body(obj), &committed));
  c.run_to_completion();
  EXPECT_FALSE(committed);
  ASSERT_EQ(c.fault_points().suspended(fp::kCommitBeforeConfirm), 1u);

  c.fault_points().resume(fp::kCommitBeforeConfirm);
  c.run_to_completion();
  EXPECT_TRUE(committed);
  EXPECT_EQ(c.server(1).store().version_of(obj), 2u);
}

struct TornOutcome {
  bool committed = false;
  bool history_ok = false;
  Version certified = 0;  // final version per the history checker
  Version best_live = 0;  // newest version on any live replica
};

// The canonical Greengage checkpoint_dtx_info race: park the coordinator
// between its votes and its confirm, cut a checkpoint on every replica
// inside that window, resume, then crash-and-restart every replica one at a
// time.  With `broken` the cuts drop the in-flight carry and the restarts
// skip the anti-entropy pull, so the committed write must vanish.
TornOutcome run_torn_race(std::uint64_t seed, bool broken) {
  ClusterConfig cfg;
  cfg.num_nodes = 7;
  cfg.quorum = QuorumKind::kMajority;
  cfg.seed = seed;
  Cluster c(cfg);
  HistoryRecorder recorder;
  c.set_history_recorder(&recorder);
  const ObjectId obj = c.seed_new_object(Bytes{1});
  FaultPointRegistry& faults = c.fault_points();

  faults.arm(fp::kCommitBeforeConfirm, FaultAction::kSuspend, /*node=*/0);
  TornOutcome out;
  c.simulator().spawn(run_bounded(&c, 0, bump_body(obj), &out.committed));
  c.run_to_completion();
  EXPECT_EQ(faults.suspended(fp::kCommitBeforeConfirm), 1u);

  if (broken) {
    faults.arm(fp::kChkCutCarry, FaultAction::kSkip,
               FaultPointRegistry::kAnyNode, FaultPointRegistry::kUnlimited);
  }
  for (std::uint32_t n = 0; n < c.num_nodes(); ++n) {
    c.cut_checkpoint(static_cast<net::NodeId>(n));
  }
  faults.disarm(fp::kChkCutCarry);

  faults.resume(fp::kCommitBeforeConfirm);
  c.run_to_completion();

  for (std::uint32_t n = 0; n < c.num_nodes(); ++n) {
    const net::NodeId node = static_cast<net::NodeId>(n);
    if (broken) {
      faults.arm(fp::kRecoverySkipSync, FaultAction::kSkip, node);
    }
    c.kill_node(node);
    c.recover_node(node);
    c.run_to_completion();
  }

  const CheckResult cr = check_history(recorder, CheckLevel::kSerializable);
  out.history_ok = cr.ok;
  const auto fin = cr.final_state.find(obj);
  if (fin != cr.final_state.end()) out.certified = fin->second.version;
  for (std::uint32_t n = 0; n < c.num_nodes(); ++n) {
    const store::ReplicaEntry* e =
        c.server(static_cast<net::NodeId>(n)).store().find(obj);
    if (e != nullptr && e->version > out.best_live) {
      out.best_live = e->version;
    }
  }
  return out;
}

// With the carry and the delta pull intact, the commit survives every
// restart: the cut carried the prepare, replay matched the post-cut confirm
// against it, and the pull healed nothing because nothing was lost.
TEST(FaultPointCluster, TornCheckpointRaceCertifiesWithCarry) {
  const TornOutcome out = run_torn_race(/*seed=*/77, /*broken=*/false);
  EXPECT_TRUE(out.committed);
  EXPECT_TRUE(out.history_ok);
  EXPECT_EQ(out.certified, 2u);
  EXPECT_EQ(out.best_live, 2u)
      << "the committed version must survive on the replicas";
}

// The regression with teeth: replaying the same race with the Greengage bug
// injected (cuts drop the carry) and the healing pull disabled loses the
// certified commit from EVERY replica -- exactly the divergence the fuzz
// canary (qrdtm_fuzz --break-recovery) must flag.
TEST(FaultPointCluster, TornCheckpointRaceLosesCommitWhenCarryDropped) {
  const TornOutcome out = run_torn_race(/*seed=*/77, /*broken=*/true);
  EXPECT_TRUE(out.committed) << "the transaction certified before the crash";
  EXPECT_EQ(out.certified, 2u);
  EXPECT_LT(out.best_live, out.certified)
      << "broken recovery must lose the committed version, proving the "
         "replica-divergence check has something real to catch";
}

}  // namespace
}  // namespace qrdtm::core
