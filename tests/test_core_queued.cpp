// Integration tests of QR-Q (queued speculative batch commit) on a
// simulated cluster: batch formation and amortisation, intra-batch
// conflict resolution by queue order, speculation rollback on cross-node
// conflicts, history certification, and the bounded give-up path.
#include <gtest/gtest.h>

#include <tuple>

#include "common/serde.h"
#include "core/cluster.h"
#include "core/history.h"

namespace qrdtm::core {
namespace {

Bytes enc_i64(std::int64_t v) {
  Writer w;
  w.i64(v);
  return std::move(w).take();
}

std::int64_t dec_i64(const Bytes& b) {
  Reader r(b);
  return r.i64();
}

ClusterConfig queued_cfg() {
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.runtime.mode = NestingMode::kQueued;
  cfg.seed = 42;
  return cfg;
}

TEST(QrQueued, SingleTransactionCommitsAndIsVisibleEverywhere) {
  Cluster c(queued_cfg());
  ObjectId obj = c.seed_new_object(enc_i64(10));
  c.spawn_client(1, [obj](Txn& t) -> sim::Task<void> {
    std::int64_t v = dec_i64(co_await t.read_for_write(obj));
    t.write(obj, enc_i64(v + 5));
  });
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, 1u);
  EXPECT_EQ(c.metrics().batches_committed, 1u);
  EXPECT_EQ(c.metrics().speculation_rollbacks, 0u);

  std::int64_t seen = -1;
  // qrdtm-lint: allow(coro-ref-capture) run_to_completion keeps `seen` alive
  c.spawn_client(9, [obj, &seen](Txn& t) -> sim::Task<void> {
    seen = dec_i64(co_await t.read(obj));
  });
  c.run_to_completion();
  EXPECT_EQ(seen, 15);
}

TEST(QrQueued, CoSubmittedConflictingIncrementsShareOneBatch) {
  // Six concurrent increments of one hot counter, all submitted on the same
  // node inside one formation window: under the per-transaction modes this
  // is an abort storm, under QR-Q it is one batch whose members read each
  // other's speculative values in queue order.
  Cluster c(queued_cfg());
  ObjectId obj = c.seed_new_object(enc_i64(0));
  constexpr int kTxns = 6;
  for (int i = 0; i < kTxns; ++i) {
    c.spawn_client(0, [obj](Txn& t) -> sim::Task<void> {
      std::int64_t v = dec_i64(co_await t.read_for_write(obj));
      t.write(obj, enc_i64(v + 1));
    });
  }
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(c.metrics().batches_committed, 1u);
  EXPECT_EQ(c.metrics().speculation_rollbacks, 0u);
  // One quorum fetch for the first touch; the other five members hit the
  // batch cache.
  auto rq = c.quorums().read_quorum(0);
  EXPECT_EQ(c.metrics().read_messages, rq.size());
  EXPECT_EQ(c.metrics().batch_read_hits, static_cast<std::uint64_t>(kTxns - 1));
  // The whole batch commits through one 2PC round.
  EXPECT_EQ(c.metrics().commit_requests, 1u);

  std::int64_t final_value = -1;
  // qrdtm-lint: allow(coro-ref-capture) run_to_completion outlives the body
  c.spawn_client(5, [obj, &final_value](Txn& t) -> sim::Task<void> {
    final_value = dec_i64(co_await t.read(obj));
  });
  c.run_to_completion();
  EXPECT_EQ(final_value, kTxns);
}

TEST(QrQueued, ReadOnlyBatchSkipsConfirmRound) {
  Cluster c(queued_cfg());
  ObjectId obj = c.seed_new_object(enc_i64(1));
  c.spawn_client(0, [obj](Txn& t) -> sim::Task<void> {
    (void)co_await t.read(obj);
  });
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, 1u);
  EXPECT_EQ(c.metrics().commit_requests, 1u);
  // Vote round only: nothing was protected, so no confirm is broadcast.
  auto wq = c.quorums().write_quorum(0);
  EXPECT_EQ(c.metrics().commit_messages, wq.size());
}

TEST(QrQueued, EmptyTransactionCommitsLocally) {
  Cluster c(queued_cfg());
  c.spawn_client(0, [](Txn&) -> sim::Task<void> { co_return; });
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, 1u);
  EXPECT_EQ(c.metrics().local_commits, 1u);
  EXPECT_EQ(c.metrics().commit_requests, 0u);
  EXPECT_EQ(c.metrics().read_messages, 0u);
}

TEST(QrQueued, CrossNodeConflictRollsBackSpeculationAndConverges) {
  // Two nodes batch increments of the same counter concurrently: the loser
  // of the 2PC race discards its round (speculation rollback), re-fetches
  // the stale queue, re-executes locally and commits on a later round.  No
  // update may be lost.
  Cluster c(queued_cfg());
  ObjectId obj = c.seed_new_object(enc_i64(0));
  constexpr int kPerNode = 4;
  for (int i = 0; i < kPerNode; ++i) {
    for (net::NodeId n : {net::NodeId{0}, net::NodeId{1}}) {
      c.spawn_client(n, [obj](Txn& t) -> sim::Task<void> {
        std::int64_t v = dec_i64(co_await t.read_for_write(obj));
        t.write(obj, enc_i64(v + 1));
      });
    }
  }
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, 2u * kPerNode);
  EXPECT_GE(c.metrics().batches_committed, 2u);
  EXPECT_GE(c.metrics().speculation_rollbacks, 1u);

  std::int64_t final_value = -1;
  // qrdtm-lint: allow(coro-ref-capture) run_to_completion outlives the body
  c.spawn_client(7, [obj, &final_value](Txn& t) -> sim::Task<void> {
    final_value = dec_i64(co_await t.read(obj));
  });
  c.run_to_completion();
  EXPECT_EQ(final_value, 2 * kPerNode);
}

TEST(QrQueued, HistoryIsCertifiedSerializable) {
  // The recorder sees one CommittedTxn per batch member with writes chained
  // in queue order; the unchanged 4-pass checker must certify the result.
  Cluster c(queued_cfg());
  HistoryRecorder rec;
  c.set_history_recorder(&rec);
  constexpr int kAccounts = 5;
  constexpr std::int64_t kInitial = 100;
  std::vector<ObjectId> accts;
  for (int i = 0; i < kAccounts; ++i) {
    accts.push_back(c.seed_new_object(enc_i64(kInitial)));
  }
  for (int i = 0; i < 12; ++i) {
    ObjectId from = accts[i % kAccounts];
    ObjectId to = accts[(i + 2) % kAccounts];
    c.spawn_client(static_cast<net::NodeId>(i % 3),
                   [from, to](Txn& t) -> sim::Task<void> {
                     std::int64_t f = dec_i64(co_await t.read_for_write(from));
                     std::int64_t g = dec_i64(co_await t.read_for_write(to));
                     t.write(from, enc_i64(f - 7));
                     t.write(to, enc_i64(g + 7));
                   });
  }
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, 12u);

  const CheckResult cr = check_history(rec, CheckLevel::kSerializable);
  EXPECT_TRUE(cr.ok) << cr.report;
  EXPECT_EQ(cr.committed, 12u);

  std::int64_t total = 0;
  // qrdtm-lint: allow(coro-ref-capture) run_to_completion keeps locals alive
  c.spawn_client(0, [&accts, &total](Txn& t) -> sim::Task<void> {
    for (ObjectId a : accts) total += dec_i64(co_await t.read(a));
  });
  c.run_to_completion();
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST(QrQueued, BatchMetricsAreConsistent) {
  Cluster c(queued_cfg());
  ObjectId obj = c.seed_new_object(enc_i64(0));
  for (int i = 0; i < 9; ++i) {
    c.spawn_client(static_cast<net::NodeId>(i % 2),
                   [obj](Txn& t) -> sim::Task<void> {
                     std::int64_t v = dec_i64(co_await t.read_for_write(obj));
                     t.write(obj, enc_i64(v + 1));
                   });
  }
  c.run_to_completion();
  const LatencyMetrics lat = c.merged_latency();
  // One batch-size sample per committed batch; every committed member
  // recorded its formation wait and commit latency.
  EXPECT_EQ(lat.batch_size.count(), c.metrics().batches_committed);
  EXPECT_EQ(lat.commit_latency.count(), c.metrics().commits);
  EXPECT_GE(lat.batch_wait.count(), c.metrics().commits);
  // Under queued mode aborts are batch rounds, never root retries or Rqv
  // failures (queued reads are flat-style).
  EXPECT_EQ(c.metrics().root_aborts, 0u);
  EXPECT_EQ(c.metrics().ct_aborts, 0u);
  EXPECT_EQ(c.metrics().validation_failures, 0u);
  EXPECT_EQ(c.metrics().total_aborts(),
            c.metrics().speculation_rollbacks);
}

sim::Task<void> bounded_txn(Cluster* c, net::NodeId node, ObjectId obj,
                            std::uint32_t max_attempts, bool* result,
                            bool* finished) {
  *result = co_await c->runtime(node).run_transaction_bounded(
      [obj](Txn& t) -> sim::Task<void> {
        std::int64_t v = dec_i64(co_await t.read_for_write(obj));
        t.write(obj, enc_i64(v + 1));
      },
      max_attempts);
  *finished = true;
}

TEST(QrQueued, BoundedBatchGivesUpWhenQuorumUnreachable) {
  Cluster c(queued_cfg());
  ObjectId obj = c.seed_new_object(enc_i64(0));
  // Total message loss: every quorum fetch times out, so each batch round
  // fails as an infrastructure abort and the attempt budget drains.
  c.network().set_drop_probability(0.99);
  bool result = true;
  bool finished = false;
  c.simulator().spawn(bounded_txn(&c, 0, obj, 3, &result, &finished));
  c.run_to_completion();
  ASSERT_TRUE(finished);
  EXPECT_FALSE(result);
  EXPECT_EQ(c.metrics().commits, 0u);
  EXPECT_EQ(c.metrics().speculation_rollbacks, 3u);
}

TEST(QrQueued, DeterministicAcrossRuns) {
  auto run = []() {
    Cluster c(queued_cfg());
    ObjectId obj = c.seed_new_object(enc_i64(0));
    for (int i = 0; i < 8; ++i) {
      c.spawn_client(static_cast<net::NodeId>(i % 3),
                     [obj](Txn& t) -> sim::Task<void> {
                       std::int64_t v = dec_i64(co_await t.read_for_write(obj));
                       t.write(obj, enc_i64(v + 1));
                     });
    }
    c.run_to_completion();
    return std::tuple{c.metrics().commits, c.metrics().batches_committed,
                      c.metrics().speculation_rollbacks,
                      c.metrics().read_messages, c.metrics().commit_messages,
                      c.duration()};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace qrdtm::core
