// Cluster facade behaviour: loop clients, phased runs, settle defaults,
// and metric plumbing.
#include <gtest/gtest.h>

#include "common/serde.h"
#include "core/cluster.h"

namespace qrdtm::core {
namespace {

Bytes enc_i64(std::int64_t v) {
  Writer w;
  w.i64(v);
  return std::move(w).take();
}

std::int64_t dec_i64(const Bytes& b) {
  Reader r(b);
  return r.i64();
}

TEST(Cluster, LoopClientsStopAfterRunFor) {
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.seed = 1;
  Cluster c(cfg);
  ObjectId obj = c.seed_new_object(enc_i64(0));
  c.spawn_loop_client(0, [obj](Rng&) {
    return [obj](Txn& t) -> sim::Task<void> { (void)co_await t.read(obj); };
  });
  c.run_for(sim::sec(5));
  std::uint64_t commits_at_deadline = c.metrics().commits;
  EXPECT_GT(commits_at_deadline, 10u);
  // Draining lets only the in-flight transaction finish; the loop exits.
  c.run_to_completion();
  EXPECT_LE(c.metrics().commits, commits_at_deadline + 1);
}

TEST(Cluster, AdvanceForKeepsLoopClientsAlive) {
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.seed = 2;
  Cluster c(cfg);
  ObjectId obj = c.seed_new_object(enc_i64(0));
  c.spawn_loop_client(0, [obj](Rng&) {
    return [obj](Txn& t) -> sim::Task<void> { (void)co_await t.read(obj); };
  });
  c.advance_for(sim::sec(5));
  std::uint64_t first = c.metrics().commits;
  c.advance_for(sim::sec(5));
  std::uint64_t second = c.metrics().commits;
  EXPECT_GT(first, 10u);
  EXPECT_GT(second, first + 10) << "clients must keep issuing";
  c.simulator().request_stop();
  c.run_to_completion();
}

TEST(Cluster, CommitSettleDefaultsToLinkLatencyBound) {
  ClusterConfig cfg;
  cfg.link_latency = sim::msec(7);
  cfg.link_jitter = sim::msec(3);
  Cluster c(cfg);
  EXPECT_EQ(c.runtime(0).config().commit_settle, sim::msec(10));
}

TEST(Cluster, CommitSettleOverrideIsRespected) {
  ClusterConfig cfg;
  cfg.runtime.commit_settle = sim::msec(1);
  Cluster c(cfg);
  EXPECT_EQ(c.runtime(0).config().commit_settle, sim::msec(1));
}

TEST(Cluster, BackToBackTransactionsDoNotRaceOwnConfirms) {
  // A single client issuing sequential writes must never abort: the settle
  // charge covers its own confirm propagation.
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.seed = 3;
  Cluster c(cfg);
  ObjectId obj = c.seed_new_object(enc_i64(0));
  c.simulator().spawn([](Cluster* cl, ObjectId o) -> sim::Task<void> {
    for (int i = 0; i < 20; ++i) {
      co_await cl->runtime(4).run_transaction([o](Txn& t) -> sim::Task<void> {
        std::int64_t v = dec_i64(co_await t.read_for_write(o));
        t.write(o, enc_i64(v + 1));
      });
    }
  }(&c, obj));
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, 20u);
  EXPECT_EQ(c.metrics().root_aborts, 0u);
}

TEST(Cluster, SeedObjectInstallsOnEveryReplica) {
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  Cluster c(cfg);
  ObjectId obj = c.seed_new_object(enc_i64(5));
  for (net::NodeId n = 0; n < c.num_nodes(); ++n) {
    EXPECT_EQ(c.server(n).store().version_of(obj), 1u);
  }
}

TEST(Cluster, PrPwBookkeepingIsCleanedAfterCommit) {
  // After a transaction commits, the write-quorum replicas must have
  // dropped it from their PR/PW lists (the confirm's drop_txn).
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  Cluster c(cfg);
  ObjectId obj = c.seed_new_object(enc_i64(0));
  c.spawn_client(0, [obj](Txn& t) -> sim::Task<void> {
    (void)co_await t.read_for_write(obj);
    t.write(obj, enc_i64(1));
  });
  c.run_to_completion();
  for (net::NodeId n : c.quorums().write_quorum(0)) {
    EXPECT_EQ(c.server(n).store().tracked_txn_entries(), 0u) << "node " << n;
  }
}

}  // namespace
}  // namespace qrdtm::core
