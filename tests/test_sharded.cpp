// End-to-end tests for sharded quorum cohorts (partial replication):
// object placement, single- vs cross-shard 2PC, the cross_shard_rounds
// metric, churn + per-cohort recovery, and serializability throughout.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/cluster.h"
#include "core/history.h"

namespace qrdtm::core {
namespace {

ClusterConfig sharded_cfg(std::uint32_t nodes, std::uint32_t shards,
                          std::uint32_t cohort_size, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.quorum = QuorumKind::kSharded;
  cfg.num_shards = shards;
  cfg.cohort_size = cohort_size;
  cfg.seed = seed;
  return cfg;
}

TxnBody bump_body(ObjectId id) {
  return [id](Txn& t) -> sim::Task<void> {
    Bytes b = co_await t.read_for_write(id);
    b[0] += 1;
    t.write(id, b);
  };
}

sim::Task<void> run_bounded(Cluster* c, net::NodeId node, TxnBody body,
                            bool* committed) {
  *committed = co_await c->runtime(node).run_transaction_bounded(
      std::move(body), 50);
}

// Partial replication: a seeded object must exist on exactly its cohort's
// members, and placement must agree with QuorumProvider::replicates.
TEST(Sharded, SeedsPlaceReplicasOnlyOnCohortMembers) {
  Cluster c(sharded_cfg(52, 8, 13, 7));
  const ObjectId obj = c.seed_new_object(Bytes{1});
  std::size_t replicas = 0;
  for (std::uint32_t n = 0; n < c.num_nodes(); ++n) {
    const net::NodeId node = static_cast<net::NodeId>(n);
    const bool has = c.server(node).store().find(obj) != nullptr;
    EXPECT_EQ(has, c.quorums().replicates(node, obj)) << "node " << n;
    replicas += has ? 1 : 0;
  }
  EXPECT_EQ(replicas, 13u) << "one cohort's worth of replicas, no more";
}

// A transaction confined to one cohort commits without a cross-shard
// round; one spanning two cohorts drives a single 2PC vote round over the
// union of both write quorums, and both writes are visible everywhere.
TEST(Sharded, SingleAndCrossShardCommits) {
  Cluster c(sharded_cfg(52, 8, 13, 9));
  HistoryRecorder rec;
  c.set_history_recorder(&rec);
  std::vector<ObjectId> objs;
  for (int i = 0; i < 16; ++i) objs.push_back(c.seed_new_object(Bytes{1}));
  const ObjectId a = objs[0];
  ObjectId b = a;
  for (ObjectId id : objs) {
    if (c.quorums().cohort_of(id) != c.quorums().cohort_of(a)) {
      b = id;
      break;
    }
  }
  ASSERT_NE(c.quorums().cohort_of(a), c.quorums().cohort_of(b))
      << "test setup: 16 objects over 8 shards must span two cohorts";

  bool committed = false;
  c.simulator().spawn(run_bounded(&c, 0, bump_body(a), &committed));
  c.run_to_completion();
  ASSERT_TRUE(committed);
  EXPECT_EQ(c.metrics().cross_shard_rounds, 0u)
      << "a single-cohort commit must not count as cross-shard";

  committed = false;
  TxnBody both = [a, b](Txn& t) -> sim::Task<void> {
    Bytes ba = co_await t.read_for_write(a);
    Bytes bb = co_await t.read_for_write(b);
    ba[0] += 1;
    bb[0] += 1;
    t.write(a, ba);
    t.write(b, bb);
  };
  c.simulator().spawn(run_bounded(&c, 3, std::move(both), &committed));
  c.run_to_completion();
  ASSERT_TRUE(committed);
  EXPECT_GE(c.metrics().cross_shard_rounds, 1u);

  // A fresh reader on an unrelated node sees both committed values.
  std::int64_t va = 0;
  std::int64_t vb = 0;
  c.spawn_client(20, [&, a, b](Txn& t) -> sim::Task<void> {
    va = (co_await t.read(a))[0];
    vb = (co_await t.read(b))[0];
  });
  c.run_to_completion();
  EXPECT_EQ(va, 3);  // seed + single-shard bump + cross-shard bump
  EXPECT_EQ(vb, 2);  // seed + cross-shard bump
  const CheckResult r = check_history(rec, CheckLevel::kSerializable);
  EXPECT_TRUE(r.ok) << r.report;
}

// Read validation must reach the readset's cohorts too: a read-a/write-b
// cross-cohort transaction whose read goes stale mid-flight must abort and
// retry rather than commit against the old version.
TEST(Sharded, CrossShardReadValidationAborts) {
  Cluster c(sharded_cfg(52, 8, 13, 17));
  HistoryRecorder rec;
  c.set_history_recorder(&rec);
  std::vector<ObjectId> objs;
  for (int i = 0; i < 16; ++i) objs.push_back(c.seed_new_object(Bytes{1}));
  const ObjectId a = objs[0];
  ObjectId b = a;
  for (ObjectId id : objs) {
    if (c.quorums().cohort_of(id) != c.quorums().cohort_of(a)) {
      b = id;
      break;
    }
  }
  ASSERT_NE(a, b);

  // Two loop clients hammer a (writes) while one repeatedly copies a's
  // value into b (read a, write b).  Serializability across the cohorts is
  // exactly what the readset-cohort union protects.
  for (net::NodeId n : {net::NodeId{1}, net::NodeId{30}}) {
    c.spawn_loop_client(n, [a](Rng&) { return bump_body(a); });
  }
  c.spawn_loop_client(14, [a, b](Rng&) {
    return TxnBody([a, b](Txn& t) -> sim::Task<void> {
      const Bytes va = co_await t.read(a);
      (void)co_await t.read_for_write(b);
      t.write(b, va);
    });
  });
  c.run_for(sim::sec(4));
  c.run_to_completion();
  EXPECT_GT(c.metrics().commits, 10u);
  const CheckResult r = check_history(rec, CheckLevel::kSerializable);
  EXPECT_TRUE(r.ok) << r.report;
}

// Churn over a sharded cluster with majority cohorts (the fuzzer's
// configuration): kill and recover a node mid-workload; recovery pulls
// each of the node's cohorts, the history stays serializable, and the
// mixed workload keeps committing cross-shard rounds.
TEST(Sharded, ChurnWithRecoveryStaysSerializable) {
  ClusterConfig cfg = sharded_cfg(39, 6, 13, 21);
  cfg.sharded_majority_inner = true;  // no inner root: kills cannot wedge
  Cluster c(cfg);
  HistoryRecorder rec;
  c.set_history_recorder(&rec);
  std::vector<ObjectId> objs;
  for (int i = 0; i < 12; ++i) objs.push_back(c.seed_new_object(Bytes{1}));

  for (net::NodeId n : {net::NodeId{0}, net::NodeId{14}, net::NodeId{27}}) {
    c.spawn_loop_client(n, [&objs](Rng& rng) -> TxnBody {
      if (rng.below(4) == 0) {  // ~25% touch two (usually cross-shard)
        const ObjectId x = objs[rng.below(objs.size())];
        const ObjectId y = objs[rng.below(objs.size())];
        return [x, y](Txn& t) -> sim::Task<void> {
          Bytes bx = co_await t.read_for_write(x);
          bx[0] += 1;
          t.write(x, bx);
          if (y != x) {
            Bytes by = co_await t.read_for_write(y);
            by[0] += 1;
            t.write(y, by);
          }
        };
      }
      return bump_body(objs[rng.below(objs.size())]);
    });
  }
  c.simulator().schedule_at(sim::sec(2), [&c] { c.kill_node(5); });
  c.simulator().schedule_at(sim::sec(4), [&c] { c.recover_node(5); });
  c.run_for(sim::sec(8));
  c.run_to_completion();

  EXPECT_EQ(c.metrics().node_recoveries, 1u);
  EXPECT_FALSE(c.server(5).syncing());
  EXPECT_GT(c.metrics().commits, 20u);
  EXPECT_GT(c.metrics().cross_shard_rounds, 0u);
  const CheckResult r = check_history(rec, CheckLevel::kSerializable);
  EXPECT_TRUE(r.ok) << r.report;
}

// One shard over the whole cluster is exactly full replication: the
// sharded provider must behave like the plain tree (same quorum shapes,
// every node replicates everything).
TEST(Sharded, SingleShardDegeneratesToFullReplication) {
  Cluster c(sharded_cfg(13, 1, 13, 3));
  const ObjectId obj = c.seed_new_object(Bytes{1});
  for (std::uint32_t n = 0; n < c.num_nodes(); ++n) {
    EXPECT_TRUE(c.quorums().replicates(static_cast<net::NodeId>(n), obj));
    EXPECT_NE(c.server(static_cast<net::NodeId>(n)).store().find(obj),
              nullptr);
  }
  EXPECT_EQ(c.quorums().write_quorum(0).size(), 7u)
      << "13-node ternary tree write quorum (paper Fig. 3)";
  bool committed = false;
  c.simulator().spawn(run_bounded(&c, 4, bump_body(obj), &committed));
  c.run_to_completion();
  EXPECT_TRUE(committed);
  EXPECT_EQ(c.metrics().cross_shard_rounds, 0u);
}

}  // namespace
}  // namespace qrdtm::core
