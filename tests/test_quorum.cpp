// Unit and property tests for quorum providers (quorum/).
#include "quorum/quorum.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "common/rng.h"

namespace qrdtm::quorum {
namespace {

TreeQuorumProvider::Config tree_cfg(std::uint32_t n, std::uint32_t level = 1,
                                    bool same = true, std::uint32_t degree = 3) {
  TreeQuorumProvider::Config c;
  c.num_nodes = n;
  c.degree = degree;
  c.read_level = level;
  c.same_for_all = same;
  return c;
}

TEST(TreeQuorum, PaperFig3Shapes) {
  // 13-node ternary tree (paper Fig. 3): read quorum = majority of the
  // root's children (2 nodes), write quorum = rooted majority at every
  // level (7 nodes).
  TreeQuorumProvider q(tree_cfg(13));
  auto rq = q.read_quorum(0);
  auto wq = q.write_quorum(0);
  EXPECT_EQ(rq.size(), 2u);
  EXPECT_EQ(wq.size(), 7u);
  EXPECT_TRUE(std::find(wq.begin(), wq.end(), 0u) != wq.end())
      << "write quorum must contain the root";
  EXPECT_TRUE(intersects(rq, wq));
}

TEST(TreeQuorum, ReadLevelZeroIsRootOnly) {
  TreeQuorumProvider q(tree_cfg(13, /*level=*/0));
  auto rq = q.read_quorum(0);
  EXPECT_EQ(rq, std::vector<net::NodeId>{0});
}

TEST(TreeQuorum, ReadLevelTwoIsLeafMajorities) {
  TreeQuorumProvider q(tree_cfg(13, /*level=*/2));
  auto rq = q.read_quorum(0);
  // Majority of root's children (2), then majority of each one's children
  // (2 each) = 4 leaves.
  EXPECT_EQ(rq.size(), 4u);
  auto wq = q.write_quorum(0);
  EXPECT_TRUE(intersects(rq, wq));
}

TEST(TreeQuorum, SingleNodeTree) {
  TreeQuorumProvider q(tree_cfg(1, /*level=*/0));
  EXPECT_EQ(q.read_quorum(0), std::vector<net::NodeId>{0});
  EXPECT_EQ(q.write_quorum(0), std::vector<net::NodeId>{0});
}

TEST(TreeQuorum, RotationSpreadsLoadButPreservesIntersection) {
  auto cfg = tree_cfg(13);
  cfg.same_for_all = false;
  TreeQuorumProvider q(cfg);
  std::set<std::vector<net::NodeId>> distinct;
  for (net::NodeId n = 0; n < 13; ++n) {
    distinct.insert(q.read_quorum(n));
  }
  EXPECT_GT(distinct.size(), 1u) << "rotation should vary quorums";
  for (net::NodeId a = 0; a < 13; ++a) {
    for (net::NodeId b = 0; b < 13; ++b) {
      EXPECT_TRUE(intersects(q.read_quorum(a), q.write_quorum(b)))
          << "R(" << a << ") vs W(" << b << ")";
      EXPECT_TRUE(intersects(q.write_quorum(a), q.write_quorum(b)));
    }
  }
}

// Property: Q1 (read/write intersection) and Q2 (write/write intersection)
// hold for every tree size, read level, degree, and rotation.
class TreeQuorumProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TreeQuorumProperty, IntersectionInvariants) {
  const auto [num_nodes, read_level, degree] = GetParam();
  auto cfg = tree_cfg(num_nodes, read_level, /*same=*/false, degree);
  TreeQuorumProvider q(cfg);
  for (net::NodeId a = 0; a < cfg.num_nodes; ++a) {
    auto rq = q.read_quorum(a);
    EXPECT_FALSE(rq.empty());
    for (net::NodeId b = 0; b < cfg.num_nodes; ++b) {
      ASSERT_TRUE(intersects(rq, q.write_quorum(b)))
          << "n=" << num_nodes << " level=" << read_level << " R(" << a
          << ") W(" << b << ")";
      ASSERT_TRUE(intersects(q.write_quorum(a), q.write_quorum(b)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreeQuorumProperty,
    ::testing::Values(std::tuple{1, 0, 3}, std::tuple{4, 1, 3},
                      std::tuple{7, 1, 3}, std::tuple{13, 0, 3},
                      std::tuple{13, 1, 3}, std::tuple{13, 2, 3},
                      std::tuple{28, 1, 3}, std::tuple{28, 2, 3},
                      std::tuple{40, 1, 3}, std::tuple{40, 2, 3},
                      std::tuple{40, 3, 3},
                      // binary and quaternary trees
                      std::tuple{7, 1, 2}, std::tuple{15, 2, 2},
                      std::tuple{31, 3, 2}, std::tuple{21, 1, 4},
                      std::tuple{21, 2, 4}, std::tuple{40, 1, 5}));

TEST(TreeQuorum, SurvivesLeafFailures) {
  TreeQuorumProvider q(tree_cfg(13, /*level=*/2));
  q.on_failure(4);
  q.on_failure(7);
  auto rq = q.read_quorum(0);
  auto wq = q.write_quorum(0);
  EXPECT_TRUE(intersects(rq, wq));
  for (net::NodeId dead : {4u, 7u}) {
    EXPECT_TRUE(std::find(rq.begin(), rq.end(), dead) == rq.end());
    EXPECT_TRUE(std::find(wq.begin(), wq.end(), dead) == wq.end());
  }
}

TEST(TreeQuorum, ReadQuorumSubstitutesDeadInternalNode) {
  // Kill n1: a level-1 read quorum must replace it with a majority of its
  // children (or use other root children).
  TreeQuorumProvider q(tree_cfg(13, /*level=*/1));
  q.on_failure(1);
  auto rq = q.read_quorum(0);
  EXPECT_TRUE(std::find(rq.begin(), rq.end(), 1u) == rq.end());
  auto wq = q.write_quorum(0);
  EXPECT_TRUE(intersects(rq, wq));
}

TEST(TreeQuorum, RootDeathBlocksWrites) {
  TreeQuorumProvider q(tree_cfg(13));
  q.on_failure(0);
  EXPECT_THROW(q.write_quorum(0), QuorumUnavailable);
  // Reads survive root death (substitution by child majorities).
  EXPECT_NO_THROW(q.read_quorum(0));
}

TEST(MajorityQuorum, SizesAndIntersection) {
  MajorityQuorumProvider q(10, /*same_for_all=*/false);
  for (net::NodeId a = 0; a < 10; ++a) {
    EXPECT_EQ(q.read_quorum(a).size(), 6u);
    for (net::NodeId b = 0; b < 10; ++b) {
      EXPECT_TRUE(intersects(q.read_quorum(a), q.write_quorum(b)));
    }
  }
}

TEST(MajorityQuorum, FailuresShrinkPool) {
  MajorityQuorumProvider q(5);
  q.on_failure(0);
  q.on_failure(1);
  auto rq = q.read_quorum(2);  // needs 3 of the remaining 3
  EXPECT_EQ(rq.size(), 3u);
  q.on_failure(2);
  EXPECT_THROW(q.read_quorum(3), QuorumUnavailable);
}

TEST(FlatFailureAware, ReadQuorumGrowsWithFailures) {
  FlatFailureAwareProvider q(28);
  EXPECT_EQ(q.read_quorum(0).size(), 1u);
  q.on_failure(3);
  EXPECT_EQ(q.read_quorum(0).size(), 2u);
  q.on_failure(4);
  q.on_failure(5);
  EXPECT_EQ(q.read_quorum(0).size(), 4u);
  EXPECT_EQ(q.write_quorum(0).size(), 25u);
}

TEST(FlatFailureAware, QuorumsAvoidDeadAndIntersect) {
  FlatFailureAwareProvider q(28);
  for (net::NodeId dead = 0; dead < 8; ++dead) {
    q.on_failure(dead);
    for (net::NodeId n = 0; n < 28; ++n) {
      auto rq = q.read_quorum(n);
      auto wq = q.write_quorum(n);
      EXPECT_TRUE(intersects(rq, wq));
      for (net::NodeId d = 0; d <= dead; ++d) {
        EXPECT_TRUE(std::find(rq.begin(), rq.end(), d) == rq.end());
      }
    }
  }
}

TEST(FlatFailureAware, SingleSharedHotspotBeforeFailures) {
  // Paper §VI-D: initially one single-node read quorum is assigned to ALL
  // nodes (a deliberate hotspot).
  FlatFailureAwareProvider q(28);
  std::set<std::vector<net::NodeId>> distinct;
  for (net::NodeId n = 0; n < 28; ++n) distinct.insert(q.read_quorum(n));
  EXPECT_EQ(distinct.size(), 1u);
}

TEST(FlatFailureAware, SpreadsReadQuorumsAfterFailures) {
  // Once the quorum grows, assignments rotate per client node so "the
  // workload is balanced across the read quorum nodes".
  FlatFailureAwareProvider q(28);
  q.on_failure(27);
  std::set<std::vector<net::NodeId>> distinct;
  for (net::NodeId n = 0; n < 27; ++n) distinct.insert(q.read_quorum(n));
  EXPECT_GT(distinct.size(), 10u);
}

// Churn property: under a random sequence of fail-stop / rejoin events,
// every provider must keep (Q1) read-write and (Q2) write-write
// intersection, never hand out a dead member, and advance its generation
// on every membership change (TxnRuntime's quorum cache keys on it).
TEST(QuorumChurnProperty, RandomKillRejoinPreservesInvariants) {
  constexpr std::uint32_t kNodes = 13;
  struct Provider {
    const char* name;
    std::unique_ptr<QuorumProvider> q;
  };
  Provider providers[] = {
      {"tree", std::make_unique<TreeQuorumProvider>(tree_cfg(kNodes))},
      {"majority", std::make_unique<MajorityQuorumProvider>(kNodes)},
      {"flat", std::make_unique<FlatFailureAwareProvider>(kNodes)},
  };
  for (Provider& p : providers) {
    QuorumProvider& q = *p.q;
    qrdtm::Rng rng(0x9e3779b9u ^ static_cast<std::uint64_t>(p.name[0]));
    std::vector<net::NodeId> dead;
    std::uint64_t last_gen = q.generation();
    for (int step = 0; step < 200; ++step) {
      // Kill or rejoin; keep the root alive (its death blocks tree writes,
      // covered separately below) and at most 3 concurrently dead.
      const bool kill = dead.size() < 3 && (dead.empty() || rng.below(2) == 0);
      if (kill) {
        net::NodeId v;
        do {
          v = static_cast<net::NodeId>(1 + rng.below(kNodes - 1));
        } while (std::find(dead.begin(), dead.end(), v) != dead.end());
        q.on_failure(v);
        dead.push_back(v);
      } else {
        const std::size_t i = rng.below(dead.size());
        const net::NodeId v = dead[i];
        dead.erase(dead.begin() + static_cast<std::ptrdiff_t>(i));
        q.on_recovery(v);
      }
      ASSERT_GT(q.generation(), last_gen)
          << p.name << " step " << step
          << ": membership change must bump the generation";
      last_gen = q.generation();
      for (net::NodeId a : {net::NodeId{0}, net::NodeId{4}, net::NodeId{9}}) {
        std::vector<net::NodeId> rq;
        std::vector<net::NodeId> wq;
        try {
          rq = q.read_quorum(a);
          wq = q.write_quorum(a);
        } catch (const QuorumUnavailable&) {
          // Legitimate under churn (e.g. two of the tree root's children
          // dead): the provider must refuse rather than hand out a
          // non-intersecting quorum, so there is nothing to check.
          continue;
        }
        for (net::NodeId d : dead) {
          ASSERT_EQ(std::find(rq.begin(), rq.end(), d), rq.end())
              << p.name << " step " << step << ": dead node " << d
              << " in read quorum";
          ASSERT_EQ(std::find(wq.begin(), wq.end(), d), wq.end())
              << p.name << " step " << step << ": dead node " << d
              << " in write quorum";
        }
        for (net::NodeId b : {net::NodeId{2}, net::NodeId{11}}) {
          std::vector<net::NodeId> wqb;
          try {
            wqb = q.write_quorum(b);
          } catch (const QuorumUnavailable&) {
            continue;
          }
          ASSERT_TRUE(intersects(rq, wqb))
              << p.name << " step " << step << ": Q1 violated for salts " << a
              << "," << b;
          ASSERT_TRUE(intersects(wq, wqb))
              << p.name << " step " << step << ": Q2 violated for salts " << a
              << "," << b;
        }
      }
    }
    // Rejoin everyone: quorums must return to full-membership shapes.
    for (net::NodeId v : dead) q.on_recovery(v);
    dead.clear();
    const std::vector<net::NodeId> wq = q.write_quorum(0);
    EXPECT_TRUE(intersects(q.read_quorum(5), wq)) << p.name;
    // Recovering an alive node is a no-op and must NOT bump the
    // generation (it would needlessly invalidate every cached quorum).
    const std::uint64_t gen = q.generation();
    q.on_recovery(3);
    EXPECT_EQ(q.generation(), gen) << p.name;
  }
}

// Tree-specific churn corner: the root's death makes write quorums
// unavailable; its rejoin must restore writability with the root back in
// every write quorum.
TEST(QuorumChurnProperty, TreeRootRejoinRestoresWrites) {
  TreeQuorumProvider q(tree_cfg(13));
  q.on_failure(0);
  EXPECT_THROW(q.write_quorum(2), QuorumUnavailable);
  q.on_recovery(0);
  const std::vector<net::NodeId> wq = q.write_quorum(2);
  EXPECT_NE(std::find(wq.begin(), wq.end(), net::NodeId{0}), wq.end());
  EXPECT_EQ(wq.size(), 7u);
}

// Regression pin (Fig. 10): the deliberate single-node hotspot returns the
// moment the LAST outstanding failure heals -- on_recovery back to zero
// failures must collapse every client's read quorum to the shared node-0
// assignment, while any failures >= 1 keep assignments rotating per client.
TEST(FlatFailureAware, HotspotCollapsesWhenAllFailuresHeal) {
  FlatFailureAwareProvider q(28);
  q.on_failure(5);
  q.on_failure(9);
  q.on_recovery(5);
  // One failure still outstanding: quorums stay spread across clients.
  std::set<std::vector<net::NodeId>> distinct;
  for (net::NodeId n = 0; n < 28; ++n) {
    if (n == 9) continue;
    distinct.insert(q.read_quorum(n));
  }
  EXPECT_GT(distinct.size(), 1u)
      << "rotation must persist while any failure is outstanding";
  q.on_recovery(9);
  distinct.clear();
  for (net::NodeId n = 0; n < 28; ++n) distinct.insert(q.read_quorum(n));
  EXPECT_EQ(distinct.size(), 1u)
      << "all failures healed: back to the single shared hotspot";
  EXPECT_EQ(q.read_quorum(17), std::vector<net::NodeId>{0});
}

// CohortMap is pure arithmetic: deterministic and roughly balanced, so the
// shard an object lands on is the same on every node with no coordination.
TEST(CohortMap, DeterministicAndRoughlyBalanced) {
  const CohortMap m(16);
  std::vector<int> counts(16, 0);
  for (store::ObjectId id = 1; id <= 4096; ++id) {
    ASSERT_LT(m.shard_of(id), 16u);
    ASSERT_EQ(m.shard_of(id), m.shard_of(id));
    ++counts[m.shard_of(id)];
  }
  for (std::uint32_t s = 0; s < 16; ++s) {
    // Expected 256 per shard; the finalizer should stay within 2x skew.
    EXPECT_GT(counts[s], 128) << "shard " << s << " starved";
    EXPECT_LT(counts[s], 512) << "shard " << s << " overloaded";
  }
}

// Every member a cohort quorum hands out must actually replicate that
// cohort (node_cohorts/replicates/cohort_of agree with the quorums).
TEST(ShardedQuorum, QuorumMembersReplicateTheirCohort) {
  ShardedQuorumProvider::Config cfg;
  cfg.num_nodes = 52;
  cfg.num_shards = 8;
  cfg.cohort_size = 13;
  ShardedQuorumProvider q(cfg);
  ASSERT_EQ(q.num_cohorts(), 8u);
  const CohortMap map(8);
  for (store::ObjectId id = 1; id <= 64; ++id) {
    EXPECT_EQ(q.cohort_of(id), map.shard_of(id));
  }
  for (std::uint32_t cohort = 0; cohort < q.num_cohorts(); ++cohort) {
    for (const std::vector<net::NodeId>& quorum :
         {q.cohort_read_quorum(3, cohort), q.cohort_write_quorum(3, cohort)}) {
      EXPECT_FALSE(quorum.empty());
      for (net::NodeId member : quorum) {
        const std::vector<std::uint32_t> cs = q.node_cohorts(member);
        EXPECT_NE(std::find(cs.begin(), cs.end(), cohort), cs.end())
            << "cohort " << cohort << " quorum handed out node " << member
            << ", which does not replicate it";
      }
    }
  }
}

// Per-cohort Q1/Q2 churn property: under 200 random kill/rejoin steps every
// cohort's read quorums must keep intersecting its write quorums (Q1), its
// write quorums must pairwise intersect (Q2), no quorum may contain a dead
// member, and every membership change must bump the provider generation.
TEST(ShardedQuorum, CohortIntersectionInvariantsUnderChurn) {
  ShardedQuorumProvider::Config cfg;
  cfg.num_nodes = 52;
  cfg.num_shards = 8;
  cfg.cohort_size = 13;
  cfg.same_for_all = false;
  ShardedQuorumProvider q(cfg);
  qrdtm::Rng rng(0xfeedfaceu);
  std::vector<net::NodeId> dead;
  std::uint64_t last_gen = q.generation();
  for (int step = 0; step < 200; ++step) {
    const bool kill = dead.size() < 4 && (dead.empty() || rng.below(2) == 0);
    if (kill) {
      net::NodeId v;
      do {
        v = static_cast<net::NodeId>(rng.below(cfg.num_nodes));
      } while (std::find(dead.begin(), dead.end(), v) != dead.end());
      q.on_failure(v);
      dead.push_back(v);
    } else {
      const std::size_t i = rng.below(dead.size());
      const net::NodeId v = dead[i];
      dead.erase(dead.begin() + static_cast<std::ptrdiff_t>(i));
      q.on_recovery(v);
    }
    ASSERT_GT(q.generation(), last_gen) << "step " << step;
    last_gen = q.generation();
    for (std::uint32_t cohort = 0; cohort < q.num_cohorts(); ++cohort) {
      for (net::NodeId a : {net::NodeId{0}, net::NodeId{17}, net::NodeId{40}}) {
        std::vector<net::NodeId> rq;
        std::vector<net::NodeId> wq;
        try {
          rq = q.cohort_read_quorum(a, cohort);
          wq = q.cohort_write_quorum(a, cohort);
        } catch (const QuorumUnavailable&) {
          // Legitimate: e.g. a cohort's inner tree root is dead.  Refusing
          // is safe; handing out a non-intersecting quorum is not.
          continue;
        }
        for (net::NodeId d : dead) {
          ASSERT_EQ(std::find(rq.begin(), rq.end(), d), rq.end())
              << "step " << step << " cohort " << cohort << ": dead " << d
              << " in read quorum";
          ASSERT_EQ(std::find(wq.begin(), wq.end(), d), wq.end())
              << "step " << step << " cohort " << cohort << ": dead " << d
              << " in write quorum";
        }
        for (net::NodeId b : {net::NodeId{9}, net::NodeId{31}}) {
          std::vector<net::NodeId> wqb;
          try {
            wqb = q.cohort_write_quorum(b, cohort);
          } catch (const QuorumUnavailable&) {
            continue;
          }
          ASSERT_TRUE(intersects(rq, wqb))
              << "step " << step << " cohort " << cohort
              << ": Q1 violated for salts " << a << "," << b;
          ASSERT_TRUE(intersects(wq, wqb))
              << "step " << step << " cohort " << cohort
              << ": Q2 violated for salts " << a << "," << b;
        }
      }
    }
  }
  // Rejoin everyone: every cohort must be writable again.
  for (net::NodeId v : dead) q.on_recovery(v);
  for (std::uint32_t cohort = 0; cohort < q.num_cohorts(); ++cohort) {
    EXPECT_TRUE(intersects(q.cohort_read_quorum(1, cohort),
                           q.cohort_write_quorum(2, cohort)))
        << "cohort " << cohort;
  }
}

// The same churn with majority cohorts (the chaos fuzzer's configuration):
// no inner root exists, so quorums must stay AVAILABLE as well as correct
// whenever fewer than half a cohort is dead.
TEST(ShardedQuorum, MajorityCohortsStayAvailableUnderMinorityFailures) {
  ShardedQuorumProvider::Config cfg;
  cfg.num_nodes = 13;
  cfg.num_shards = 4;
  cfg.cohort_size = 7;
  cfg.inner = ShardedQuorumProvider::Inner::kMajority;
  ShardedQuorumProvider q(cfg);
  q.on_failure(2);
  q.on_failure(8);
  for (std::uint32_t cohort = 0; cohort < q.num_cohorts(); ++cohort) {
    std::vector<net::NodeId> rq;
    std::vector<net::NodeId> wq;
    ASSERT_NO_THROW(rq = q.cohort_read_quorum(0, cohort)) << cohort;
    ASSERT_NO_THROW(wq = q.cohort_write_quorum(5, cohort)) << cohort;
    EXPECT_TRUE(intersects(rq, wq)) << cohort;
    for (net::NodeId d : {net::NodeId{2}, net::NodeId{8}}) {
      EXPECT_EQ(std::find(wq.begin(), wq.end(), d), wq.end()) << cohort;
    }
  }
}

TEST(Intersects, Basics) {
  EXPECT_TRUE(intersects({1, 2, 3}, {3, 4}));
  EXPECT_FALSE(intersects({1, 2}, {3, 4}));
  EXPECT_FALSE(intersects({}, {1}));
}

}  // namespace
}  // namespace qrdtm::quorum
