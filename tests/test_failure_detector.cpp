// Failure-detector tests: unit behaviour of the timeout counter, and the
// end-to-end recovery story -- a silent fail-stop is discovered from RPC
// timeouts and quorums reconfigure around it.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/serde.h"
#include "core/cluster.h"
#include "core/failure_detector.h"
#include "core/history.h"

namespace qrdtm::core {
namespace {

Bytes enc_i64(std::int64_t v) {
  Writer w;
  w.i64(v);
  return std::move(w).take();
}

std::int64_t dec_i64(const Bytes& b) {
  Reader r(b);
  return r.i64();
}

TEST(FailureDetectorUnit, SuspectsAfterThresholdConsecutiveTimeouts) {
  std::vector<net::NodeId> suspects;
  FailureDetector fd(3, [&](net::NodeId n) { suspects.push_back(n); });
  fd.report_timeout(5);
  fd.report_timeout(5);
  EXPECT_TRUE(suspects.empty());
  fd.report_timeout(5);
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0], 5u);
  EXPECT_TRUE(fd.is_suspected(5));
}

TEST(FailureDetectorUnit, SuccessResetsTheCounter) {
  int fired = 0;
  FailureDetector fd(3, [&](net::NodeId) { ++fired; });
  fd.report_timeout(5);
  fd.report_timeout(5);
  fd.report_success(5);  // transient congestion, not a failure
  fd.report_timeout(5);
  fd.report_timeout(5);
  EXPECT_EQ(fired, 0);
  fd.report_timeout(5);
  EXPECT_EQ(fired, 1);
}

TEST(FailureDetectorUnit, FiresOncePerNodeAndTracksIndependently) {
  int fired = 0;
  FailureDetector fd(2, [&](net::NodeId) { ++fired; });
  fd.report_timeout(1);
  fd.report_timeout(2);
  fd.report_timeout(1);  // node 1 suspected
  fd.report_timeout(1);  // already suspected: no second callback
  fd.report_timeout(2);  // node 2 suspected
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(fd.suspected_count(), 2u);
}

TEST(FailureDetectorUnit, FlappingNodeFiresBothCallbacksPerFlap) {
  // A node that oscillates between unresponsive and responsive: every
  // suspect transition fires on_suspect, every successful reply while
  // suspected fires on_rescind, and the node can be re-suspected after.
  int suspected = 0;
  int rescinded = 0;
  FailureDetector fd(
      2, [&](net::NodeId) { ++suspected; }, [&](net::NodeId) { ++rescinded; });
  for (int flap = 0; flap < 3; ++flap) {
    fd.report_timeout(7);
    fd.report_timeout(7);
    EXPECT_TRUE(fd.is_suspected(7));
    fd.report_success(7);
    EXPECT_FALSE(fd.is_suspected(7));
  }
  EXPECT_EQ(suspected, 3);
  EXPECT_EQ(rescinded, 3);
  // A success from a never-suspected node must not fire on_rescind.
  fd.report_success(8);
  EXPECT_EQ(rescinded, 3);
  // forget() clears state silently: no callback, and the timeout counter
  // restarts from zero.
  fd.report_timeout(7);
  fd.report_timeout(7);
  EXPECT_EQ(suspected, 4);
  fd.forget(7);
  EXPECT_EQ(rescinded, 3);
  EXPECT_FALSE(fd.is_suspected(7));
  fd.report_timeout(7);
  EXPECT_FALSE(fd.is_suspected(7)) << "forget must reset the counter";
  fd.report_timeout(7);
  EXPECT_TRUE(fd.is_suspected(7));
  EXPECT_EQ(suspected, 5);
}

TEST(FailureDetectorE2E, SilentFailureIsDiscoveredAndRoutedAround) {
  // Kill a read-quorum member WITHOUT telling the provider.  With detection
  // enabled, the first few transactions time out against it, the detector
  // fires, quorums reconfigure, and the workload completes.
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.seed = 31;
  cfg.failure_detection_threshold = 3;
  cfg.runtime.rpc_timeout = sim::msec(120);
  Cluster c(cfg);
  ObjectId obj = c.seed_new_object(enc_i64(0));

  auto rq = c.quorums().read_quorum(0);
  ASSERT_FALSE(rq.empty());
  c.kill_node(rq[0], /*notify_provider=*/false);

  c.simulator().spawn([](Cluster* cl, ObjectId o) -> sim::Task<void> {
    for (int i = 0; i < 10; ++i) {
      co_await cl->runtime(0).run_transaction([o](Txn& t) -> sim::Task<void> {
        std::int64_t v = dec_i64(co_await t.read_for_write(o));
        t.write(o, enc_i64(v + 1));
      });
    }
  }(&c, obj));
  c.run_to_completion();

  EXPECT_EQ(c.metrics().commits, 10u);
  EXPECT_EQ(c.suspected_nodes(), 1u);
  // Once reconfigured, the dead node must be out of the quorums.
  auto rq_after = c.quorums().read_quorum(0);
  EXPECT_TRUE(std::find(rq_after.begin(), rq_after.end(), rq[0]) ==
              rq_after.end());
}

TEST(FailureDetectorE2E, WriteQuorumMemberFailureBlocksOnlyUntilDetected) {
  // A dead *write-quorum* member makes every 2PC lose a vote; without
  // detection writers live-lock.  With detection the commits eventually
  // flow: the first transactions burn timeouts, then quorums reconfigure.
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.seed = 32;
  cfg.failure_detection_threshold = 2;
  cfg.runtime.rpc_timeout = sim::msec(120);
  Cluster c(cfg);
  ObjectId obj = c.seed_new_object(enc_i64(0));

  // Kill a leaf write-quorum member that no read quorum uses.
  auto wq = c.quorums().write_quorum(0);
  auto rq = c.quorums().read_quorum(0);
  net::NodeId victim = net::kNoNode;
  for (net::NodeId n : wq) {
    if (n != 0 && std::find(rq.begin(), rq.end(), n) == rq.end()) victim = n;
  }
  ASSERT_NE(victim, net::kNoNode);
  c.kill_node(victim, /*notify_provider=*/false);

  c.spawn_client(0, [obj](Txn& t) -> sim::Task<void> {
    std::int64_t v = dec_i64(co_await t.read_for_write(obj));
    t.write(obj, enc_i64(v + 1));
  });
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, 1u);
  EXPECT_GE(c.metrics().vote_aborts, 1u) << "first 2PC must have timed out";
  EXPECT_EQ(c.suspected_nodes(), 1u);
}

TEST(FailureDetectorE2E, DisabledDetectionCannotCommitPastDeadVoter) {
  // Without detection a silently-dead read-quorum member stalls every read:
  // the strict quorum gather refuses to proceed on a partial quorum (a
  // missing reply is indistinguishable from a stale member), so the
  // transaction aborts before it ever reaches 2PC -- and without the
  // detector the quorums never reconfigure.  This is exactly the failure
  // mode the detector exists to break.
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.seed = 33;
  cfg.failure_detection_threshold = 0;  // off
  cfg.runtime.rpc_timeout = sim::msec(80);
  Cluster c(cfg);
  ObjectId obj = c.seed_new_object(enc_i64(7));

  auto rq = c.quorums().read_quorum(0);
  ASSERT_FALSE(rq.empty());
  c.kill_node(rq[0], /*notify_provider=*/false);

  std::int64_t seen = 0;
  bool committed = true;
  c.simulator().spawn([](Cluster* cl, ObjectId o, std::int64_t* out,
                         bool* ok) -> sim::Task<void> {
    *ok = co_await cl->runtime(0).run_transaction_bounded(
        [o, out](Txn& t) -> sim::Task<void> {
          *out = dec_i64(co_await t.read(o));
        },
        /*max_attempts=*/3);
  }(&c, obj, &seen, &committed));
  c.run_to_completion();

  EXPECT_EQ(seen, 0) << "the incomplete read quorum must not serve data";
  EXPECT_FALSE(committed);
  EXPECT_GE(c.metrics().root_aborts, 3u) << "every attempt aborts at the read";
  EXPECT_EQ(c.metrics().vote_aborts, 0u) << "2PC is never reached";
  EXPECT_EQ(c.suspected_nodes(), 0u);
  EXPECT_EQ(c.quorums().read_quorum(0), rq) << "no reconfiguration";
}

TEST(FailureDetectorE2E, FalseSuspicionOfSlowNodeKeepsCommittedStateConsistent) {
  // A node that is alive but slower than the RPC timeout looks exactly like
  // a crashed one.  Suspecting it is allowed (the detector need not be
  // accurate) -- but the late replies that keep trickling in from it must
  // never corrupt or diverge committed state.
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.seed = 34;
  cfg.failure_detection_threshold = 2;
  cfg.runtime.rpc_timeout = sim::msec(100);
  Cluster c(cfg);
  HistoryRecorder rec;
  c.set_history_recorder(&rec);
  ObjectId obj = c.seed_new_object(enc_i64(0));

  auto rq = c.quorums().read_quorum(0);
  ASSERT_FALSE(rq.empty());
  const net::NodeId slow = rq[0];
  // Sender + receiver slowdown: every RPC through `slow` gains 240 ms,
  // far above the 100 ms timeout, yet every reply is eventually delivered.
  c.network().set_node_slowdown(slow, sim::msec(120));

  c.simulator().spawn([](Cluster* cl, ObjectId o) -> sim::Task<void> {
    for (int i = 0; i < 8; ++i) {
      co_await cl->runtime(0).run_transaction([o](Txn& t) -> sim::Task<void> {
        std::int64_t v = dec_i64(co_await t.read_for_write(o));
        t.write(o, enc_i64(v + 1));
      });
    }
  }(&c, obj));
  c.run_to_completion();

  EXPECT_EQ(c.metrics().commits, 8u);
  EXPECT_TRUE(c.network().alive(slow)) << "nobody killed it; it is just slow";
  EXPECT_GE(c.suspected_nodes(), 1u) << "slow != dead, but the FD cannot tell";

  // The false positive may cost availability (retries, a shrunken quorum)
  // but never correctness: the history certifies 1-copy serializable and no
  // replica -- the slow one included -- ran past the certified final state.
  const CheckResult r = check_history(rec, CheckLevel::kSerializable);
  EXPECT_TRUE(r.ok) << r.report;
  ASSERT_EQ(r.final_state.count(obj), 1u);
  const auto& fin = r.final_state.at(obj);
  EXPECT_EQ(dec_i64(fin.data), 8);
  Version best = 0;
  for (std::uint32_t n = 0; n < c.num_nodes(); ++n) {
    const Version v = c.server(n).store().version_of(obj);
    EXPECT_LE(v, fin.version) << "replica " << n << " ran past commit";
    if (v == fin.version) {
      EXPECT_EQ(c.server(n).store().find(obj)->data, fin.data);
    }
    best = std::max(best, v);
  }
  EXPECT_EQ(best, fin.version) << "the newest live replica is the final state";
}

}  // namespace
}  // namespace qrdtm::core
