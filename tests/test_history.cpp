// HistoryRecorder + check_history: hand-built histories exercising every
// violation class, the two strictness levels, and recorder integration
// against live clusters in all three nesting modes.
#include <gtest/gtest.h>

#include <set>

#include "core/cluster.h"
#include "core/history.h"

using namespace qrdtm;
using core::CheckLevel;
using core::CheckResult;
using core::CommittedTxn;
using core::HistoryRead;
using core::HistoryRecorder;
using core::HistoryWrite;

namespace {

core::Bytes bytes_of(std::uint8_t b) { return core::Bytes{b}; }

CommittedTxn txn(core::TxnId id, std::vector<HistoryRead> reads,
                 std::vector<HistoryWrite> writes, core::Version snapshot = 0) {
  CommittedTxn t;
  t.txn = id;
  t.node = 0;
  t.commit_tick = static_cast<sim::Tick>(id);
  t.snapshot = snapshot;
  t.reads = std::move(reads);
  t.writes = std::move(writes);
  return t;
}

TEST(HistoryChecker, SerialHistoryPassesAndYieldsFinalState) {
  HistoryRecorder h;
  h.record_seed(1, 1, bytes_of(10));
  h.record_commit(txn(1, {{1, 1}}, {{1, 1, 2, bytes_of(20)}}));
  h.record_commit(txn(2, {{1, 2}}, {}));
  const CheckResult r = core::check_history(h, CheckLevel::kSerializable);
  EXPECT_TRUE(r.ok) << r.report;
  EXPECT_EQ(r.committed, 2u);
  ASSERT_EQ(r.final_state.count(1), 1u);
  EXPECT_EQ(r.final_state.at(1).version, 2u);
  EXPECT_EQ(r.final_state.at(1).data, bytes_of(20));
}

TEST(HistoryChecker, LostUpdateIsAViolation) {
  HistoryRecorder h;
  h.record_seed(1, 1, bytes_of(10));
  h.record_commit(txn(1, {}, {{1, 1, 2, bytes_of(20)}}));
  // Writes over base 1 again: never observed (or validated against) v2.
  h.record_commit(txn(2, {}, {{1, 1, 3, bytes_of(30)}}));
  const CheckResult r = core::check_history(h, CheckLevel::kSerializable);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.report.find("lost update"), std::string::npos) << r.report;
}

TEST(HistoryChecker, DuplicateInstallIsAViolation) {
  HistoryRecorder h;
  h.record_seed(1, 1, bytes_of(10));
  h.record_commit(txn(1, {}, {{1, 1, 2, bytes_of(20)}}));
  h.record_commit(txn(2, {}, {{1, 1, 2, bytes_of(30)}}));
  const CheckResult r = core::check_history(h, CheckLevel::kSerializable);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.report.find("duplicate install"), std::string::npos) << r.report;
  // Lost updates and duplicate installs are chain defects: the snapshot
  // level must reject them too.
  EXPECT_FALSE(core::check_history(h, CheckLevel::kSnapshotReads).ok);
}

TEST(HistoryChecker, PhantomReadIsAViolation) {
  HistoryRecorder h;
  h.record_seed(1, 1, bytes_of(10));
  h.record_commit(txn(1, {{1, 5}}, {}));
  const CheckResult r = core::check_history(h, CheckLevel::kSerializable);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.report.find("phantom read"), std::string::npos) << r.report;
}

TEST(HistoryChecker, MixedSnapshotIsACycle) {
  HistoryRecorder h;
  h.record_seed(1, 1, bytes_of(10));
  h.record_seed(2, 1, bytes_of(10));
  // W installs v2 of both objects; R saw object 1 after W but object 2
  // before W -- an opacity violation (no serial order places R).
  h.record_commit(txn(1, {}, {{1, 1, 2, bytes_of(20)}, {2, 1, 2, bytes_of(20)}}));
  h.record_commit(txn(2, {{1, 2}, {2, 1}}, {}));
  const CheckResult r = core::check_history(h, CheckLevel::kSerializable);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.report.find("cycle"), std::string::npos) << r.report;
}

TEST(HistoryChecker, WriteSkewLegalAtSnapshotLevelOnly) {
  HistoryRecorder h;
  h.record_seed(1, 1, bytes_of(10));
  h.record_seed(2, 1, bytes_of(10));
  // Classic write skew: each reads both objects at v1, each writes one.
  h.record_commit(txn(1, {{2, 1}}, {{1, 1, 2, bytes_of(20)}}));
  h.record_commit(txn(2, {{1, 1}}, {{2, 1, 2, bytes_of(30)}}));
  EXPECT_TRUE(core::check_history(h, CheckLevel::kSnapshotReads).ok);
  const CheckResult strict = core::check_history(h, CheckLevel::kSerializable);
  EXPECT_FALSE(strict.ok);
  EXPECT_NE(strict.report.find("cycle"), std::string::npos) << strict.report;
}

TEST(HistoryChecker, ReadAboveSnapshotIsAViolationAtSnapshotLevel) {
  HistoryRecorder h;
  h.record_seed(1, 1, bytes_of(10));
  h.record_commit(txn(1, {}, {{1, 1, 2, bytes_of(20)}}));
  h.record_commit(txn(2, {{1, 2}}, {}, /*snapshot=*/1));
  const CheckResult r = core::check_history(h, CheckLevel::kSnapshotReads);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.report.find("above snapshot"), std::string::npos) << r.report;
}

TEST(HistoryChecker, CreatedObjectsNeedNoSeed) {
  HistoryRecorder h;
  h.record_commit(txn(1, {}, {{7, 0, 1, bytes_of(20)}}));
  h.record_commit(txn(2, {{7, 1}}, {}));
  const CheckResult r = core::check_history(h, CheckLevel::kSerializable);
  EXPECT_TRUE(r.ok) << r.report;
  EXPECT_EQ(r.final_state.at(7).version, 1u);
}

TEST(HistoryRecorder, DumpContainsSeedsCommitsAndEvents) {
  HistoryRecorder h;
  h.record_seed(1, 1, bytes_of(10));
  h.record_commit(txn(3, {{1, 1}}, {{1, 1, 2, bytes_of(20)}}));
  h.record_abort(sim::msec(5), 2, 0x99, "vote failed");
  h.record_rollback(sim::msec(6), 1, 0x77, 2);
  h.record_fault(sim::msec(7), "kill node 4 (silent)");
  const std::string dump = h.dump();
  EXPECT_NE(dump.find("seed"), std::string::npos);
  EXPECT_NE(dump.find("commit"), std::string::npos);
  EXPECT_NE(dump.find("vote failed"), std::string::npos);
  EXPECT_NE(dump.find("partial rollback to epoch 2"), std::string::npos);
  EXPECT_NE(dump.find("kill node 4"), std::string::npos);
}

// ------------------------------------------------------- live recording ---

core::TxnBody transfer_body(core::ObjectId from, core::ObjectId to,
                            bool nested) {
  return [from, to, nested](core::Txn& t) -> sim::Task<void> {
    auto move_one = [from, to](core::Txn& scope) -> sim::Task<void> {
      const core::Bytes a = co_await scope.read_for_write(from);
      const core::Bytes b = co_await scope.read_for_write(to);
      core::Bytes a2 = a, b2 = b;
      a2[0] -= 1;
      b2[0] += 1;
      scope.write(from, a2);
      scope.write(to, b2);
    };
    if (nested) {
      co_await t.nested(move_one);
    } else {
      co_await move_one(t);
    }
  };
}

class HistoryRecordingTest : public ::testing::TestWithParam<core::NestingMode> {};

TEST_P(HistoryRecordingTest, RecordedRunIsSerializableAndMatchesReplicas) {
  core::ClusterConfig cfg;
  cfg.seed = 11;
  cfg.runtime.mode = GetParam();
  core::Cluster cluster(cfg);
  HistoryRecorder rec;
  cluster.set_history_recorder(&rec);

  const core::ObjectId a = cluster.seed_new_object(bytes_of(100));
  const core::ObjectId b = cluster.seed_new_object(bytes_of(100));
  const core::ObjectId c = cluster.seed_new_object(bytes_of(100));
  const bool nested = GetParam() != core::NestingMode::kFlat;
  cluster.spawn_client(0, transfer_body(a, b, nested));
  cluster.spawn_client(1, transfer_body(b, c, nested));
  cluster.spawn_client(2, transfer_body(c, a, nested));
  cluster.run_to_completion();

  EXPECT_EQ(cluster.metrics().commits, 3u);
  const CheckResult r = core::check_history(rec, CheckLevel::kSerializable);
  EXPECT_TRUE(r.ok) << r.report;
  EXPECT_EQ(r.committed, 3u);
  // Conservation invariant straight from the certified final state.
  int total = 0;
  for (const auto& [id, fin] : r.final_state) total += fin.data[0];
  EXPECT_EQ(total, 300);
  // Every object's newest live replica matches the certified final state.
  for (const auto& [id, fin] : r.final_state) {
    core::Version best = 0;
    for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n) {
      best = std::max(best, cluster.server(n).store().version_of(id));
    }
    EXPECT_EQ(best, fin.version) << "object " << id;
  }
  // Conflicting transfers abort and retry: the abort/rollback event stream
  // must reflect what the metrics counted.
  const std::size_t abort_like =
      cluster.metrics().root_aborts + cluster.metrics().partial_rollbacks +
      cluster.metrics().ct_aborts;
  if (abort_like > 0) {
    EXPECT_FALSE(rec.events().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, HistoryRecordingTest,
                         ::testing::Values(core::NestingMode::kFlat,
                                           core::NestingMode::kClosed,
                                           core::NestingMode::kCheckpoint));

}  // namespace
