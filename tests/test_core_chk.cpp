// Integration tests of QR-CHK: automatic checkpointing with partial
// rollback (paper §IV).
#include <gtest/gtest.h>

#include "common/serde.h"
#include "core/cluster.h"

namespace qrdtm::core {
namespace {

Bytes enc_i64(std::int64_t v) {
  Writer w;
  w.i64(v);
  return std::move(w).take();
}

std::int64_t dec_i64(const Bytes& b) {
  Reader r(b);
  return r.i64();
}

ClusterConfig chk_cfg(std::uint32_t threshold = 1) {
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.runtime.mode = NestingMode::kCheckpoint;
  cfg.runtime.chk_threshold = threshold;
  // Isolate rollback logic from the (calibrated) cost model.
  cfg.runtime.chk_create_cost = 0;
  cfg.runtime.chk_create_cost_per_obj = 0;
  cfg.runtime.chk_restore_cost = 0;
  cfg.seed = 11;
  return cfg;
}

void bump_everywhere(Cluster& c, sim::Tick at, ObjectId obj,
                     std::int64_t value) {
  c.simulator().schedule_at(at, [&c, obj, value] {
    Version v = c.server(0).store().version_of(obj);
    for (net::NodeId n = 0; n < c.num_nodes(); ++n) {
      c.server(n).store().apply(obj, v + 1, enc_i64(value));
    }
  });
}

TEST(QrChk, CheckpointsCreatedAtThreshold) {
  Cluster c(chk_cfg(/*threshold=*/2));
  std::vector<ObjectId> objs;
  for (int i = 0; i < 6; ++i) objs.push_back(c.seed_new_object(enc_i64(i)));
  std::uint64_t epochs_seen = 0;
  c.spawn_client(0, [&](Txn& t) -> sim::Task<void> {
    for (ObjectId o : objs) (void)co_await t.read(o);
    epochs_seen = t.current_epoch();
  });
  c.run_to_completion();
  // 6 fetched objects at threshold 2 => checkpoints after objects 2, 4, 6.
  EXPECT_EQ(c.metrics().checkpoints_created, 3u);
  EXPECT_EQ(epochs_seen, 3u);
}

TEST(QrChk, PartialRollbackResumesFromInvalidEpoch) {
  Cluster c(chk_cfg(/*threshold=*/1));
  ObjectId a = c.seed_new_object(enc_i64(1));
  ObjectId b = c.seed_new_object(enc_i64(2));
  ObjectId x = c.seed_new_object(enc_i64(3));
  ObjectId d = c.seed_new_object(enc_i64(4));

  // Read order: a (chk1), b (chk2), x (chk3), [bump b], d -> Rqv fails on b
  // (ownerChk=1) -> rollback to checkpoint 1 -> replay re-fetches b, x, d.
  int body_runs = 0;
  std::int64_t final_b = 0;
  c.spawn_client(1, [&, a, b, x, d](Txn& t) -> sim::Task<void> {
    ++body_runs;
    (void)co_await t.read(a);
    final_b = dec_i64(co_await t.read(b));
    (void)co_await t.read(x);
    co_await t.compute(sim::msec(300));
    (void)co_await t.read(d);
  });
  bump_everywhere(c, sim::msec(150), b, 22);
  c.run_to_completion();

  EXPECT_EQ(c.metrics().commits, 1u);
  EXPECT_EQ(c.metrics().partial_rollbacks, 1u);
  EXPECT_EQ(c.metrics().root_aborts, 0u);
  EXPECT_EQ(body_runs, 2) << "replay re-invokes the body";
  EXPECT_EQ(final_b, 22) << "resumed execution reads the fresh value";
}

TEST(QrChk, ConflictBeforeFirstCheckpointIsFullAbort) {
  Cluster c(chk_cfg(/*threshold=*/3));
  ObjectId a = c.seed_new_object(enc_i64(1));
  ObjectId b = c.seed_new_object(enc_i64(2));

  // a is read at epoch 0 (no checkpoint yet at threshold 3): a conflict on
  // it rolls back to the start = full abort.
  c.spawn_client(1, [&, a, b](Txn& t) -> sim::Task<void> {
    (void)co_await t.read(a);
    co_await t.compute(sim::msec(300));
    (void)co_await t.read(b);
  });
  bump_everywhere(c, sim::msec(150), a, 9);
  c.run_to_completion();

  EXPECT_EQ(c.metrics().commits, 1u);
  EXPECT_EQ(c.metrics().partial_rollbacks, 0u);
  EXPECT_EQ(c.metrics().root_aborts, 1u);
}

TEST(QrChk, RollbackTargetsMinimumInvalidEpoch) {
  Cluster c(chk_cfg(/*threshold=*/1));
  ObjectId a = c.seed_new_object(enc_i64(1));
  ObjectId b = c.seed_new_object(enc_i64(2));
  ObjectId x = c.seed_new_object(enc_i64(3));
  ObjectId d = c.seed_new_object(enc_i64(4));

  // b has ownerChk=1 and x has ownerChk=2; bump both: abortChk = min = 1.
  ChkEpoch epoch_after_rollback = 99;
  int runs = 0;
  c.spawn_client(1, [&](Txn& t) -> sim::Task<void> {
    ++runs;
    if (runs == 2) epoch_after_rollback = t.current_epoch();
    (void)co_await t.read(a);
    (void)co_await t.read(b);
    (void)co_await t.read(x);
    co_await t.compute(sim::msec(300));
    (void)co_await t.read(d);
  });
  bump_everywhere(c, sim::msec(150), b, 20);
  bump_everywhere(c, sim::msec(150), x, 30);
  c.run_to_completion();

  EXPECT_EQ(c.metrics().partial_rollbacks, 1u);
  EXPECT_EQ(epoch_after_rollback, 1u);
}

void bump_on(Cluster& c, sim::Tick at, net::NodeId node, ObjectId obj,
             std::int64_t value) {
  c.simulator().schedule_at(at, [&c, node, obj, value] {
    Version v = c.server(node).store().version_of(obj);
    c.server(node).store().apply(obj, v + 1, enc_i64(value));
  });
}

TEST(QrChk, MixedQuorumRepliesCombineToMinimumEpoch) {
  // Unlike RollbackTargetsMinimumInvalidEpoch, here no single replica sees
  // both stale objects: one read-quorum member answers abortChk=1 (b) and
  // another abortChk=2 (x).  The client-side combine across the strict
  // quorum gather must still roll back to min = 1.
  Cluster c(chk_cfg(/*threshold=*/1));
  ObjectId a = c.seed_new_object(enc_i64(1));
  ObjectId b = c.seed_new_object(enc_i64(2));
  ObjectId x = c.seed_new_object(enc_i64(3));
  ObjectId d = c.seed_new_object(enc_i64(4));

  const std::vector<net::NodeId> rq = c.quorums().read_quorum(1);
  ASSERT_GE(rq.size(), 2u) << "test needs a multi-member read quorum";

  ChkEpoch epoch_after_rollback = 99;
  int runs = 0;
  c.spawn_client(1, [&](Txn& t) -> sim::Task<void> {
    ++runs;
    if (runs == 2) epoch_after_rollback = t.current_epoch();
    (void)co_await t.read(a);
    (void)co_await t.read(b);
    (void)co_await t.read(x);
    co_await t.compute(sim::msec(300));
    (void)co_await t.read(d);
  });
  bump_on(c, sim::msec(150), rq[0], b, 20);
  bump_on(c, sim::msec(150), rq[1], x, 30);
  c.run_to_completion();

  EXPECT_EQ(c.metrics().commits, 1u);
  EXPECT_EQ(c.metrics().partial_rollbacks, 1u);
  EXPECT_EQ(c.metrics().root_aborts, 0u);
  EXPECT_EQ(epoch_after_rollback, 1u);
}

TEST(QrChk, MixedRepliesIncludingEpochZeroForceFullRestart) {
  // One quorum member reports a conflict on an epoch-0 object while another
  // reports a later epoch.  min(0, 1) = 0: rolling back to the start is a
  // full abort, not a partial rollback -- and the retry must still commit.
  Cluster c(chk_cfg(/*threshold=*/3));
  ObjectId a = c.seed_new_object(enc_i64(1));
  ObjectId b = c.seed_new_object(enc_i64(2));
  ObjectId x = c.seed_new_object(enc_i64(3));
  ObjectId d = c.seed_new_object(enc_i64(4));
  ObjectId e = c.seed_new_object(enc_i64(5));

  const std::vector<net::NodeId> rq = c.quorums().read_quorum(1);
  ASSERT_GE(rq.size(), 2u) << "test needs a multi-member read quorum";

  int runs = 0;
  c.spawn_client(1, [&](Txn& t) -> sim::Task<void> {
    ++runs;
    (void)co_await t.read(a);  // epoch 0
    (void)co_await t.read(b);  // epoch 0
    (void)co_await t.read(x);  // epoch 0; checkpoint after (threshold 3)
    (void)co_await t.read(d);  // epoch 1
    co_await t.compute(sim::msec(300));
    (void)co_await t.read(e);
  });
  bump_on(c, sim::msec(150), rq[0], a, 9);   // ownerChk = 0
  bump_on(c, sim::msec(150), rq[1], d, 40);  // ownerChk = 1
  c.run_to_completion();

  EXPECT_EQ(c.metrics().commits, 1u);
  EXPECT_EQ(c.metrics().partial_rollbacks, 0u);
  EXPECT_EQ(c.metrics().root_aborts, 1u);
  EXPECT_EQ(runs, 2) << "full restart re-executes the body from the top";
}

TEST(QrChk, ReplayFastForwardSkipsComputeAndLocalReads) {
  // A large compute before the checkpoint must be charged once: replay
  // fast-forwards ops below the checkpoint cursor.
  Cluster c(chk_cfg(/*threshold=*/2));
  ObjectId a = c.seed_new_object(enc_i64(1));
  ObjectId b = c.seed_new_object(enc_i64(2));
  ObjectId x = c.seed_new_object(enc_i64(3));
  ObjectId d = c.seed_new_object(enc_i64(4));

  c.spawn_client(1, [&](Txn& t) -> sim::Task<void> {
    (void)co_await t.read(a);
    co_await t.compute(sim::sec(10));  // heavy prefix compute
    (void)co_await t.read(b);          // checkpoint 1 after this (threshold 2)
    (void)co_await t.read(x);
    co_await t.compute(sim::msec(300));
    (void)co_await t.read(d);
  });
  // Invalidate x (ownerChk=1): rollback to checkpoint 1, which is *after*
  // the 10 s compute -> replay must not re-charge it.
  bump_everywhere(c, sim::sec(10) + sim::msec(200), x, 33);
  c.run_to_completion();

  EXPECT_EQ(c.metrics().partial_rollbacks, 1u);
  EXPECT_LT(c.duration(), sim::sec(12))
      << "replay re-charged the prefix compute";
  EXPECT_GT(c.duration(), sim::sec(10));
}

TEST(QrChk, CreatedObjectIdsStableAcrossReplay) {
  Cluster c(chk_cfg(/*threshold=*/1));
  ObjectId a = c.seed_new_object(enc_i64(1));
  ObjectId b = c.seed_new_object(enc_i64(2));

  std::vector<ObjectId> created_per_run;
  c.spawn_client(1, [&](Txn& t) -> sim::Task<void> {
    ObjectId fresh = t.create(enc_i64(7));
    created_per_run.push_back(fresh);
    (void)co_await t.read(a);  // chk 1
    co_await t.compute(sim::msec(300));
    (void)co_await t.read(b);  // validation sees bumped a? (a ownerChk=0)
  });
  // Bump b is useless (read last); bump a would be epoch 0 -> full abort.
  // Instead read order guarantees chk1 contains {fresh, a}; invalidate via a
  // second object read after the checkpoint:
  c.run_to_completion();
  ASSERT_FALSE(created_per_run.empty());

  // All recorded creates across replays must be the same id.
  for (ObjectId id : created_per_run) EXPECT_EQ(id, created_per_run[0]);
}

TEST(QrChk, CheckpointTransactionsCommitVia2pcEvenWhenReadOnly) {
  Cluster c(chk_cfg());
  ObjectId obj = c.seed_new_object(enc_i64(5));
  c.spawn_client(0, [obj](Txn& t) -> sim::Task<void> {
    (void)co_await t.read(obj);
  });
  c.run_to_completion();
  // Paper §IV-A: request-commit and commit are exactly the flat ones.
  EXPECT_EQ(c.metrics().commit_requests, 1u);
  EXPECT_EQ(c.metrics().local_commits, 0u);
}

TEST(QrChk, CheckpointCreationCostIsCharged) {
  ClusterConfig cfg = chk_cfg(/*threshold=*/1);
  cfg.runtime.chk_create_cost = sim::msec(50);
  Cluster c(cfg);
  std::vector<ObjectId> objs;
  for (int i = 0; i < 4; ++i) objs.push_back(c.seed_new_object(enc_i64(i)));
  c.spawn_client(0, [&](Txn& t) -> sim::Task<void> {
    for (ObjectId o : objs) (void)co_await t.read(o);
  });
  c.run_to_completion();
  EXPECT_EQ(c.metrics().checkpoints_created, 4u);
  EXPECT_GT(c.duration(), sim::msec(200));  // 4 checkpoints x 50 ms
}

TEST(QrChk, RepeatedConflictsEventuallyCommit) {
  Cluster c(chk_cfg(/*threshold=*/1));
  ObjectId hot = c.seed_new_object(enc_i64(0));
  ObjectId cold1 = c.seed_new_object(enc_i64(1));
  ObjectId cold2 = c.seed_new_object(enc_i64(2));

  c.spawn_client(1, [&](Txn& t) -> sim::Task<void> {
    (void)co_await t.read(cold1);
    (void)co_await t.read(hot);
    co_await t.compute(sim::msec(100));
    (void)co_await t.read(cold2);
  });
  // Three successive bumps of `hot` force repeated partial rollbacks.
  bump_everywhere(c, sim::msec(80), hot, 10);
  bump_everywhere(c, sim::msec(400), hot, 11);
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, 1u);
  EXPECT_GE(c.metrics().partial_rollbacks, 1u);
}

TEST(QrChk, SerialisabilityUnderContention) {
  Cluster c(chk_cfg(/*threshold=*/1));
  ObjectId ctr = c.seed_new_object(enc_i64(0));
  ObjectId filler1 = c.seed_new_object(enc_i64(0));
  ObjectId filler2 = c.seed_new_object(enc_i64(0));
  constexpr int kClients = 10;
  for (int i = 0; i < kClients; ++i) {
    c.spawn_client(static_cast<net::NodeId>(i % c.num_nodes()),
                   [=](Txn& t) -> sim::Task<void> {
                     (void)co_await t.read(filler1);
                     std::int64_t v = dec_i64(co_await t.read_for_write(ctr));
                     (void)co_await t.read(filler2);
                     t.write(ctr, enc_i64(v + 1));
                   });
  }
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, static_cast<std::uint64_t>(kClients));
  std::int64_t final_v = 0;
  c.spawn_client(0, [&, ctr](Txn& t) -> sim::Task<void> {
    final_v = dec_i64(co_await t.read(ctr));
  });
  c.run_to_completion();
  EXPECT_EQ(final_v, kClients);
}

}  // namespace
}  // namespace qrdtm::core
