// Unit tests for the simulated network and RPC layer (net/).
#include "net/network.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "alloc_counter.h"
#include "net/latency.h"
#include "net/rpc.h"
#include "sim/task.h"

namespace qrdtm::net {
namespace {

using sim::Simulator;
using sim::Task;
using sim::Tick;

std::unique_ptr<Network> make_net(Simulator& s, Tick latency,
                                  Tick service = sim::usec(50),
                                  Tick jitter = 0) {
  return std::make_unique<Network>(
      s, std::make_unique<UniformLatency>(latency, jitter), /*seed=*/7,
      service);
}

TEST(Network, DeliversAfterLatencyPlusService) {
  Simulator s;
  auto net = make_net(s, sim::msec(10), sim::usec(100));
  Tick delivered_at = 0;
  NodeId a = net->add_node([](const Message&) {});
  NodeId b = net->add_node([&](const Message&) { delivered_at = s.now(); });
  net->send(Message{.src = a, .dst = b, .kind = 1, .payload = {}});
  s.run();
  EXPECT_EQ(delivered_at, sim::msec(10) + sim::usec(100));
}

TEST(Network, ServiceQueueSerialisesArrivals) {
  Simulator s;
  auto net = make_net(s, sim::msec(1), sim::usec(500));
  std::vector<Tick> times;
  NodeId a = net->add_node([](const Message&) {});
  NodeId b = net->add_node([&](const Message&) { times.push_back(s.now()); });
  for (int i = 0; i < 3; ++i) {
    net->send(Message{.src = a, .dst = b, .kind = 1, .payload = {}});
  }
  s.run();
  ASSERT_EQ(times.size(), 3u);
  // All arrive at 1 ms; service slots are back-to-back 500 us each.
  EXPECT_EQ(times[0], sim::msec(1) + sim::usec(500));
  EXPECT_EQ(times[1], sim::msec(1) + sim::usec(1000));
  EXPECT_EQ(times[2], sim::msec(1) + sim::usec(1500));
}

TEST(Network, DeadDestinationDropsMessages) {
  Simulator s;
  auto net = make_net(s, sim::msec(1));
  int got = 0;
  NodeId a = net->add_node([](const Message&) {});
  NodeId b = net->add_node([&](const Message&) { ++got; });
  net->kill(b);
  net->send(Message{.src = a, .dst = b, .kind = 1, .payload = {}});
  s.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net->stats().dropped_dead, 1u);
  EXPECT_FALSE(net->alive(b));
}

TEST(Network, DeadSenderCannotSend) {
  Simulator s;
  auto net = make_net(s, sim::msec(1));
  int got = 0;
  NodeId a = net->add_node([](const Message&) {});
  NodeId b = net->add_node([&](const Message&) { ++got; });
  net->kill(a);
  net->send(Message{.src = a, .dst = b, .kind = 1, .payload = {}});
  s.run();
  EXPECT_EQ(got, 0);
}

TEST(Network, KillMidFlightDropsAtArrival) {
  Simulator s;
  auto net = make_net(s, sim::msec(10));
  int got = 0;
  NodeId a = net->add_node([](const Message&) {});
  NodeId b = net->add_node([&](const Message&) { ++got; });
  net->send(Message{.src = a, .dst = b, .kind = 1, .payload = {}});
  s.schedule_at(sim::msec(5), [&] { net->kill(b); });
  s.run();
  EXPECT_EQ(got, 0);
}

TEST(Network, StatsCountByKind) {
  Simulator s;
  auto net = make_net(s, sim::msec(1));
  NodeId a = net->add_node([](const Message&) {});
  NodeId b = net->add_node([](const Message&) {});
  net->send(Message{.src = a, .dst = b, .kind = 5, .payload = {}});
  net->send(Message{.src = a, .dst = b, .kind = 5, .payload = {}});
  net->send(Message{.src = a, .dst = b, .kind = 9, .payload = {}});
  s.run();
  EXPECT_EQ(net->stats().sent_total, 3u);
  EXPECT_EQ(net->stats().sent_by_kind(5), 2u);
  EXPECT_EQ(net->stats().sent_by_kind(9), 1u);
  EXPECT_EQ(net->stats().delivered_total, 3u);
}

TEST(GridLatency, IsSymmetricAndMetric) {
  Rng rng(3);
  GridLatency g(10, sim::msec(1), sim::msec(10), /*layout_seed=*/5);
  for (NodeId a = 0; a < 10; ++a) {
    for (NodeId b = 0; b < 10; ++b) {
      Tick ab = g.one_way(a, b, rng);
      Tick ba = g.one_way(b, a, rng);
      EXPECT_EQ(ab, ba) << a << "," << b;
      // Triangle inequality through any intermediate c (with base slack).
      for (NodeId c = 0; c < 10; ++c) {
        Tick ac = g.one_way(a, c, rng);
        Tick cb = g.one_way(c, b, rng);
        EXPECT_LE(ab, ac + cb + sim::msec(1));
      }
    }
  }
}

// ------------------------------------------------------------------- RPC

struct EchoCluster {
  Simulator sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<RpcEndpoint> client;
  std::unique_ptr<RpcEndpoint> server;

  explicit EchoCluster(Tick latency = sim::msec(5)) {
    net = make_net(sim, latency);
    client = std::make_unique<RpcEndpoint>(sim, *net);
    server = std::make_unique<RpcEndpoint>(sim, *net);
    server->register_service(
        42, [](NodeId, const Bytes& req) -> std::optional<Bytes> {
          Bytes out = req;
          out.push_back(0xEE);
          return out;
        });
  }
};

TEST(Rpc, CallRoundTrips) {
  EchoCluster c;
  RpcResult got;
  c.sim.spawn([](EchoCluster* cl, RpcResult* out) -> Task<void> {
    auto fut = cl->client->call(cl->server->id(), 42, Bytes{1, 2},
                                sim::sec(1));
    *out = co_await fut;
  }(&c, &got));
  c.sim.run();
  EXPECT_TRUE(got.ok);
  EXPECT_EQ(got.from, c.server->id());
  EXPECT_EQ(got.payload, (Bytes{1, 2, 0xEE}));
}

TEST(Rpc, TimeoutWhenServerDead) {
  EchoCluster c;
  c.net->kill(c.server->id());
  RpcResult got;
  Tick when = 0;
  c.sim.spawn([](EchoCluster* cl, RpcResult* out, Tick* t) -> Task<void> {
    *out = co_await cl->client->call(cl->server->id(), 42, Bytes{},
                                     sim::msec(100));
    *t = cl->sim.now();
  }(&c, &got, &when));
  c.sim.run();
  EXPECT_FALSE(got.ok);
  EXPECT_EQ(when, sim::msec(100));
}

TEST(Rpc, MulticastGathersAllReplies) {
  Simulator s;
  auto net = make_net(s, sim::msec(2));
  RpcEndpoint client(s, *net);
  std::vector<std::unique_ptr<RpcEndpoint>> servers;
  std::vector<NodeId> members;
  for (int i = 0; i < 5; ++i) {
    servers.push_back(std::make_unique<RpcEndpoint>(s, *net));
    servers.back()->register_service(
        7, [i](NodeId, const Bytes&) -> std::optional<Bytes> {
          return Bytes{static_cast<std::uint8_t>(i)};
        });
    members.push_back(servers.back()->id());
  }
  std::vector<RpcResult> got;
  s.spawn([](RpcEndpoint* cl, std::vector<NodeId> m,
             std::vector<RpcResult>* out) -> Task<void> {
    auto futs = cl->multicast(m, 7, Bytes{}, sim::sec(1));
    for (auto& f : futs) out->push_back(co_await f);
  }(&client, members, &got));
  s.run();
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(got[i].ok);
    EXPECT_EQ(got[i].payload, Bytes{static_cast<std::uint8_t>(i)});
  }
}

TEST(Rpc, OneWayNotifyTakesNoReply) {
  Simulator s;
  auto net = make_net(s, sim::msec(1));
  RpcEndpoint a(s, *net);
  RpcEndpoint b(s, *net);
  int received = 0;
  b.register_service(9, [&](NodeId, const Bytes&) -> std::optional<Bytes> {
    ++received;
    return std::nullopt;
  });
  a.notify(b.id(), 9, Bytes{});
  s.run();
  EXPECT_EQ(received, 1);
  // Only the one request crossed the network (no response message).
  EXPECT_EQ(net->stats().sent_total, 1u);
}

TEST(Rpc, LateResponseAfterTimeoutIsIgnored) {
  // Server replies at 10 ms but the client gave up at 5 ms.
  Simulator s;
  auto net = make_net(s, sim::msec(5), /*service=*/sim::usec(1));
  RpcEndpoint client(s, *net);
  RpcEndpoint server(s, *net);
  server.register_service(1, [](NodeId, const Bytes&) -> std::optional<Bytes> {
    return Bytes{};
  });
  RpcResult got;
  s.spawn([](RpcEndpoint* cl, NodeId dst, RpcResult* out) -> Task<void> {
    *out = co_await cl->call(dst, 1, Bytes{}, sim::msec(5));
  }(&client, server.id(), &got));
  s.run();  // the response arrives ~10 ms, after the timeout resolved
  EXPECT_FALSE(got.ok);
}

// --- allocation regression -------------------------------------------------
// With pooled payload buffers and the pooled event kernel, a full RPC round
// trip (request out, service, response back, decode, release) must not
// allocate in steady state.  The warm-up must outlast the RPC timeout:
// timeout events occupy event-pool slots until they expire, so the pool only
// reaches its steady-state size after the first timeouts start firing.

TEST(AllocRegression, SteadyStateRpcRoundTripIsAllocationFree) {
  if (!qrdtm::testing::alloc_hook_active()) {
    GTEST_SKIP() << "allocation counting unavailable (sanitizer build intercepts\n operator new, or replacement not linked in)";
  }
  Simulator s;
  auto net = make_net(s, sim::usec(100), sim::usec(10));
  RpcEndpoint client(s, *net);
  RpcEndpoint server(s, *net);
  server.register_service(
      42, [&server](NodeId, const Bytes& req) -> std::optional<Bytes> {
        Bytes out = server.acquire_buffer(42);
        out.assign(req.begin(), req.end());
        return out;
      });
  std::uint64_t after_warm = 0;
  std::uint64_t after_measure = 0;
  s.spawn([](RpcEndpoint* cl, NodeId dst, std::uint64_t* warm,
             std::uint64_t* measure) -> Task<void> {
    // ~220 us per round trip vs a 5 ms timeout: ~23 timeouts outstanding in
    // steady state, reached well within the first 2000 rounds.
    for (int i = 0; i <= 3000; ++i) {
      if (i == 2000) *warm = qrdtm::testing::alloc_count();
      Bytes req = cl->acquire_buffer(42);
      req.assign({1, 2, 3, 4});
      RpcResult res = co_await cl->call(dst, 42, std::move(req), sim::msec(5));
      if (res.ok) cl->release_buffer(std::move(res.payload));
    }
    *measure = qrdtm::testing::alloc_count();
  }(&client, server.id(), &after_warm, &after_measure));
  s.run();
  ASSERT_NE(after_measure, 0u);
  EXPECT_EQ(after_measure, after_warm);
}

}  // namespace
}  // namespace qrdtm::net
