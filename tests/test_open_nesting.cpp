// QR-ON (open nesting) tests: global early commit, abstract-lock semantic
// isolation, and compensation on root abort.
#include <gtest/gtest.h>

#include "apps/hashmap.h"
#include "common/serde.h"
#include "core/cluster.h"

namespace qrdtm::core {
namespace {

Bytes enc_i64(std::int64_t v) {
  Writer w;
  w.i64(v);
  return std::move(w).take();
}

std::int64_t dec_i64(const Bytes& b) {
  Reader r(b);
  return r.i64();
}

ClusterConfig on_cfg() {
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.seed = 81;
  return cfg;
}

TEST(OpenNesting, BodyCommitsGloballyBeforeRootFinishes) {
  Cluster c(on_cfg());
  ObjectId obj = c.seed_new_object(enc_i64(0));

  std::int64_t observed_mid_root = -1;
  c.spawn_client(1, [&, obj](Txn& t) -> sim::Task<void> {
    OpenOp op;
    op.locks = {1};
    op.body = [obj](Txn& ot) -> sim::Task<void> {
      (void)co_await ot.read_for_write(obj);
      ot.write(obj, enc_i64(42));
    };
    co_await t.open_nested(std::move(op));
    // The open body has committed; the root dawdles before finishing.
    co_await t.compute(sim::msec(500));
  });
  // An independent reader looks while the root is still dawdling.
  c.simulator().schedule_at(sim::msec(300), [&c, obj, &observed_mid_root] {
    c.spawn_client(5, [obj, &observed_mid_root](Txn& t) -> sim::Task<void> {
      observed_mid_root = dec_i64(co_await t.read(obj));
    });
  });
  c.run_to_completion();
  EXPECT_EQ(observed_mid_root, 42)
      << "open-nested commits must be globally visible before root commit";
  EXPECT_EQ(c.metrics().open_commits, 1u);
}

TEST(OpenNesting, LocksReleaseAfterRootCommit) {
  Cluster c(on_cfg());
  ObjectId obj = c.seed_new_object(enc_i64(0));
  c.spawn_client(0, [obj](Txn& t) -> sim::Task<void> {
    OpenOp op;
    op.locks = {7, 9};
    op.body = [obj](Txn& ot) -> sim::Task<void> {
      (void)co_await ot.read(obj);
    };
    co_await t.open_nested(std::move(op));
  });
  c.run_to_completion();
  std::size_t held = 0;
  for (net::NodeId n = 0; n < c.num_nodes(); ++n) {
    held += c.lock_manager(n).held_count();
  }
  EXPECT_EQ(held, 0u) << "all abstract locks must be released";
}

TEST(OpenNesting, AbstractLockSerialisesConflictingRoots) {
  // Two roots contend on the same abstract lock; the second must wait (or
  // retry) until the first's root settles -- their open bodies never
  // interleave on the semantic entity.
  Cluster c(on_cfg());
  ObjectId obj = c.seed_new_object(enc_i64(0));

  std::vector<int> order;
  auto make_root = [&](int tag) {
    return [&, tag, obj](Txn& t) -> sim::Task<void> {
      OpenOp op;
      op.locks = {5};
      op.body = [&, tag, obj](Txn& ot) -> sim::Task<void> {
        std::int64_t v = dec_i64(co_await ot.read_for_write(obj));
        ot.write(obj, enc_i64(v + 1));
        order.push_back(tag);
      };
      op.compensation = [](Txn&) -> sim::Task<void> { co_return; };
      co_await t.open_nested(std::move(op));
      co_await t.compute(sim::msec(200));  // hold the lock a while
    };
  };
  c.spawn_client(1, make_root(1));
  c.spawn_client(2, make_root(2));
  c.run_to_completion();

  std::int64_t final_v = 0;
  c.spawn_client(0, [&, obj](Txn& t) -> sim::Task<void> {
    final_v = dec_i64(co_await t.read(obj));
  });
  c.run_to_completion();
  EXPECT_EQ(final_v, 2);
  EXPECT_GE(c.metrics().lock_conflicts, 1u)
      << "the second root must have been held off the lock";
}

TEST(OpenNesting, CompensationRunsOnRootAbortNewestFirst) {
  // The root performs two open increments on different objects, then
  // deliberately conflicts and aborts once: both compensations must run
  // (newest first) before the retry, leaving no double counting.
  Cluster c(on_cfg());
  ObjectId a = c.seed_new_object(enc_i64(0));
  ObjectId b = c.seed_new_object(enc_i64(0));
  ObjectId victim = c.seed_new_object(enc_i64(0));

  std::vector<std::string> comp_order;
  int attempts = 0;
  c.spawn_client(1, [&](Txn& t) -> sim::Task<void> {
    ++attempts;
    auto inc = [](ObjectId o) {
      return [o](Txn& ot) -> sim::Task<void> {
        std::int64_t v = dec_i64(co_await ot.read_for_write(o));
        ot.write(o, enc_i64(v + 1));
      };
    };
    auto dec = [&comp_order](ObjectId o, std::string tag) -> TxnBody {
      return [o, tag, &comp_order](Txn& ct) -> sim::Task<void> {
        std::int64_t v = dec_i64(co_await ct.read_for_write(o));
        ct.write(o, enc_i64(v - 1));
        comp_order.push_back(tag);
      };
    };
    OpenOp op_a;
    op_a.locks = {11};
    op_a.body = inc(a);
    op_a.compensation = dec(a, "a");
    co_await t.open_nested(std::move(op_a));
    OpenOp op_b;
    op_b.locks = {12};
    op_b.body = inc(b);
    op_b.compensation = dec(b, "b");
    co_await t.open_nested(std::move(op_b));
    // Direct (memory-level) work that will conflict on the first attempt.
    (void)co_await t.read_for_write(victim);
    t.write(victim, enc_i64(attempts));
    if (attempts == 1) {
      co_await t.compute(sim::msec(400));  // window for the saboteur
    }
  });
  // Saboteur bumps `victim` during attempt 1's compute window (the two
  // open operations take ~300 ms of lock+commit rounds first) -> the root
  // vote-aborts at commit.
  c.simulator().schedule_at(sim::msec(500), [&c, victim] {
    Version v = c.server(0).store().version_of(victim);
    for (net::NodeId n = 0; n < c.num_nodes(); ++n) {
      c.server(n).store().apply(victim, v + 1, enc_i64(99));
    }
  });
  c.run_to_completion();

  EXPECT_EQ(attempts, 2);
  ASSERT_EQ(comp_order.size(), 2u);
  EXPECT_EQ(comp_order[0], "b") << "newest compensation first";
  EXPECT_EQ(comp_order[1], "a");
  EXPECT_EQ(c.metrics().compensations_run, 2u);
  EXPECT_EQ(c.metrics().open_commits, 4u) << "re-run after the retry";

  // Net effect: exactly one increment of each survived.
  std::int64_t fa = 0, fb = 0;
  c.spawn_client(0, [&](Txn& t) -> sim::Task<void> {
    fa = dec_i64(co_await t.read(a));
    fb = dec_i64(co_await t.read(b));
  });
  c.run_to_completion();
  EXPECT_EQ(fa, 1);
  EXPECT_EQ(fb, 1);
}

TEST(OpenNesting, RejectedBelowRootAndUnderCheckpointing) {
  {
    // Inside a (real) closed-nested scope: rejected.
    ClusterConfig cc = on_cfg();
    cc.runtime.mode = NestingMode::kClosed;
    Cluster c2(cc);
    ObjectId obj2 = c2.seed_new_object(enc_i64(0));
    bool threw2 = false;
    c2.spawn_client(0, [&, obj2](Txn& t) -> sim::Task<void> {
      co_await t.nested([&, obj2](Txn& ct) -> sim::Task<void> {
        OpenOp op;
        op.locks = {1};
        op.body = [obj2](Txn& ot) -> sim::Task<void> {
          (void)co_await ot.read(obj2);
        };
        try {
          co_await ct.open_nested(std::move(op));
        } catch (const InvariantError&) {
          threw2 = true;
        }
      });
    });
    c2.run_to_completion();
    EXPECT_TRUE(threw2);
  }
  {
    ClusterConfig cfg = on_cfg();
    cfg.runtime.mode = NestingMode::kCheckpoint;
    Cluster c(cfg);
    ObjectId obj = c.seed_new_object(enc_i64(0));
    bool threw = false;
    c.spawn_client(0, [&, obj](Txn& t) -> sim::Task<void> {
      OpenOp op;
      op.locks = {1};
      op.body = [obj](Txn& ot) -> sim::Task<void> {
        (void)co_await ot.read(obj);
      };
      try {
        co_await t.open_nested(std::move(op));
      } catch (const InvariantError&) {
        threw = true;
      }
      co_return;
    });
    c.run_to_completion();
    EXPECT_TRUE(threw);
  }
}

TEST(OpenNesting, HashmapOpenWorkloadPreservesInvariants) {
  Cluster c(on_cfg());
  apps::HashmapApp app;
  apps::WorkloadParams params;
  params.num_objects = 48;
  params.read_ratio = 0.2;
  params.nested_calls = 3;
  Rng setup(5);
  app.setup(c, params, setup);

  for (net::NodeId n = 0; n < 8; ++n) {
    c.spawn_loop_client(n, [&app, params](Rng& rng) {
      return app.make_txn_open(params, rng);
    });
  }
  c.run_for(sim::sec(30));
  c.run_to_completion();
  EXPECT_GT(c.metrics().open_commits, 50u);

  bool ok = false;
  c.spawn_client(0, app.make_checker(&ok));
  c.run_to_completion();
  EXPECT_TRUE(ok) << "hashmap corrupted under open nesting";

  std::size_t held = 0;
  for (net::NodeId n = 0; n < c.num_nodes(); ++n) {
    held += c.lock_manager(n).held_count();
  }
  EXPECT_EQ(held, 0u) << "leaked abstract locks";
}

}  // namespace
}  // namespace qrdtm::core
