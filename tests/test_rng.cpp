// Unit tests for the deterministic RNG (common/rng.h).
#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace qrdtm {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(99), parent2(99);
  Rng childa = parent1.split(1);
  Rng childb = parent2.split(1);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(childa.next(), childb.next());

  Rng p(99);
  Rng c1 = p.split(1);
  Rng c2 = p.split(1);  // second split consumes parent state: differs
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.next() == c2.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(23);
  constexpr int kBuckets = 10;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

}  // namespace
}  // namespace qrdtm
