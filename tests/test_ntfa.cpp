// N-TFA tests: closed nesting over the TFA baseline (related work the
// paper compares against -- Turcu, Ravindran & Saad's N-TFA).
#include <gtest/gtest.h>

#include "baselines/tfa.h"
#include "common/serde.h"

namespace qrdtm::baselines {
namespace {

Bytes enc_i64(std::int64_t v) {
  Writer w;
  w.i64(v);
  return std::move(w).take();
}

std::int64_t dec_i64(const Bytes& b) {
  Reader r(b);
  return r.i64();
}

TfaConfig nested_cfg() {
  TfaConfig cfg;
  cfg.closed_nesting = true;
  cfg.seed = 61;
  return cfg;
}

/// Seed an object whose home node matches `with`'s home: transaction
/// forwarding only triggers when a read reaches a node whose clock advanced,
/// so conflict-detection tests need the probe object co-located with the
/// contended one.
ObjectId seed_colocated(TfaCluster& c, ObjectId with, std::int64_t value) {
  for (int i = 0; i < 1000; ++i) {
    ObjectId id = c.seed_new_object(enc_i64(value));
    if (c.home_of(id) == c.home_of(with)) return id;
  }
  ADD_FAILURE() << "could not co-locate an object";
  return 0;
}

TEST(Ntfa, NestedScopesMergeAndCommit) {
  TfaCluster c(nested_cfg());
  ObjectId x = c.seed_new_object(enc_i64(1));
  ObjectId y = c.seed_new_object(enc_i64(2));
  c.spawn_client(0, [x, y](TfaTxn& t) -> sim::Task<void> {
    co_await t.nested([x](TfaTxn& ct) -> sim::Task<void> {
      std::int64_t v = dec_i64(co_await ct.read_for_write(x));
      ct.write(x, enc_i64(v + 10));
    });
    co_await t.nested([y](TfaTxn& ct) -> sim::Task<void> {
      std::int64_t v = dec_i64(co_await ct.read_for_write(y));
      ct.write(y, enc_i64(v + 20));
    });
  });
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, 1u);

  std::int64_t sx = 0, sy = 0;
  c.spawn_client(3, [&, x, y](TfaTxn& t) -> sim::Task<void> {
    sx = dec_i64(co_await t.read(x));
    sy = dec_i64(co_await t.read(y));
  });
  c.run_to_completion();
  EXPECT_EQ(sx, 11);
  EXPECT_EQ(sy, 22);
}

TEST(Ntfa, FlatConfigInlinesNestedScopes) {
  TfaConfig cfg;
  cfg.closed_nesting = false;
  TfaCluster c(cfg);
  ObjectId x = c.seed_new_object(enc_i64(5));
  std::size_t depth_inside = 99;
  c.spawn_client(0, [&, x](TfaTxn& t) -> sim::Task<void> {
    co_await t.nested([&, x](TfaTxn& inner) -> sim::Task<void> {
      (void)co_await inner.read(x);
      depth_inside = inner.depth();
    });
  });
  c.run_to_completion();
  EXPECT_EQ(depth_inside, 1u) << "flat TFA must not open scopes";
}

TEST(Ntfa, InnerConflictRetriesOnlyTheScope) {
  // Forwarding validation fails on an object read by the *inner* scope:
  // only that scope retries (ct_aborts), not the whole transaction.
  TfaCluster c(nested_cfg());
  ObjectId outer_obj = c.seed_new_object(enc_i64(1));
  ObjectId inner_obj = c.seed_new_object(enc_i64(2));
  ObjectId trigger = seed_colocated(c, inner_obj, 3);

  int inner_runs = 0;
  c.spawn_client(0, [&](TfaTxn& t) -> sim::Task<void> {
    (void)co_await t.read(outer_obj);
    co_await t.nested([&](TfaTxn& ct) -> sim::Task<void> {
      ++inner_runs;
      (void)co_await ct.read(inner_obj);
      co_await c.simulator().delay(sim::msec(150));
      // Reading `trigger` after the writer commits forwards the clock and
      // validates both scopes' read-sets.
      (void)co_await ct.read(trigger);
    });
  });
  // Concurrent writer bumps inner_obj while the inner scope is sleeping.
  c.simulator().schedule_at(sim::msec(50), [&c, inner_obj] {
    c.spawn_client(1, [inner_obj](TfaTxn& t) -> sim::Task<void> {
      std::int64_t v = dec_i64(co_await t.read_for_write(inner_obj));
      t.write(inner_obj, enc_i64(v + 100));
    });
  });
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, 2u);
  EXPECT_EQ(c.metrics().ct_aborts, 1u);
  EXPECT_EQ(c.metrics().root_aborts, 0u);
  EXPECT_EQ(inner_runs, 2);
}

TEST(Ntfa, OuterConflictAbortsWholeTransaction) {
  TfaCluster c(nested_cfg());
  ObjectId outer_obj = c.seed_new_object(enc_i64(1));
  ObjectId trigger = seed_colocated(c, outer_obj, 3);

  int root_runs = 0;
  c.spawn_client(0, [&](TfaTxn& t) -> sim::Task<void> {
    ++root_runs;
    (void)co_await t.read(outer_obj);  // owned by the root scope
    co_await c.simulator().delay(sim::msec(150));
    co_await t.nested([&](TfaTxn& ct) -> sim::Task<void> {
      (void)co_await ct.read(trigger);  // forwards + validates outer_obj
    });
  });
  c.simulator().schedule_at(sim::msec(50), [&c, outer_obj] {
    c.spawn_client(1, [outer_obj](TfaTxn& t) -> sim::Task<void> {
      std::int64_t v = dec_i64(co_await t.read_for_write(outer_obj));
      t.write(outer_obj, enc_i64(v + 100));
    });
  });
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, 2u);
  EXPECT_GE(c.metrics().root_aborts, 1u);
  EXPECT_EQ(root_runs, 2);
}

TEST(Ntfa, AbortedScopeDiscardsItsBufferedWrites) {
  TfaCluster c(nested_cfg());
  ObjectId x = c.seed_new_object(enc_i64(1));
  ObjectId y = c.seed_new_object(enc_i64(0));
  ObjectId trigger = seed_colocated(c, x, 0);

  c.spawn_client(0, [&](TfaTxn& t) -> sim::Task<void> {
    co_await t.nested([&](TfaTxn& ct) -> sim::Task<void> {
      std::int64_t v = dec_i64(co_await ct.read(x));
      (void)co_await ct.read_for_write(y);
      ct.write(y, enc_i64(v * 100));
      co_await c.simulator().delay(sim::msec(150));
      (void)co_await ct.read(trigger);  // detects the bumped x
    });
  });
  c.simulator().schedule_at(sim::msec(50), [&c, x] {
    c.spawn_client(1, [x](TfaTxn& t) -> sim::Task<void> {
      (void)co_await t.read_for_write(x);
      t.write(x, enc_i64(2));
    });
  });
  c.run_to_completion();

  std::int64_t fy = 0;
  c.spawn_client(3, [&, y](TfaTxn& t) -> sim::Task<void> {
    fy = dec_i64(co_await t.read(y));
  });
  c.run_to_completion();
  EXPECT_EQ(fy, 200) << "retried scope must derive from the fresh x";
}

TEST(Ntfa, NestedTransfersConserveUnderContention) {
  TfaCluster c(nested_cfg());
  constexpr int kAccounts = 8;
  std::vector<ObjectId> accts;
  for (int i = 0; i < kAccounts; ++i) {
    accts.push_back(c.seed_new_object(enc_i64(100)));
  }
  for (int i = 0; i < 30; ++i) {
    ObjectId from = accts[i % kAccounts];
    ObjectId to = accts[(i + 3) % kAccounts];
    c.spawn_client(static_cast<net::NodeId>(i % c.num_nodes()),
                   [from, to](TfaTxn& t) -> sim::Task<void> {
                     co_await t.nested([&](TfaTxn& ct) -> sim::Task<void> {
                       std::int64_t f =
                           dec_i64(co_await ct.read_for_write(from));
                       std::int64_t g =
                           dec_i64(co_await ct.read_for_write(to));
                       ct.write(from, enc_i64(f - 5));
                       ct.write(to, enc_i64(g + 5));
                     });
                   });
  }
  c.run_to_completion();
  std::int64_t total = 0;
  c.spawn_client(0, [&](TfaTxn& t) -> sim::Task<void> {
    for (ObjectId a : accts) total += dec_i64(co_await t.read(a));
  });
  c.run_to_completion();
  EXPECT_EQ(total, kAccounts * 100);
}

}  // namespace
}  // namespace qrdtm::baselines
