// Unit tests for the per-node replica store (store/).
#include "store/replica_store.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace qrdtm::store {
namespace {

TEST(ReplicaStore, MissingObjectBehavesAsVersionZero) {
  ReplicaStore s;
  EXPECT_EQ(s.find(42), nullptr);
  EXPECT_EQ(s.version_of(42), 0u);
  EXPECT_FALSE(s.protected_against(42, 1));
}

TEST(ReplicaStore, SeedInstallsCopy) {
  ReplicaStore s;
  s.seed(1, Bytes{9, 9}, 5);
  const ReplicaEntry* e = s.find(1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->version, 5u);
  EXPECT_EQ(e->data, (Bytes{9, 9}));
}

TEST(ReplicaStore, ApplyOnlyFastForwards) {
  ReplicaStore s;
  s.apply(1, 3, Bytes{3});
  s.apply(1, 2, Bytes{2});  // stale confirm: ignored
  EXPECT_EQ(s.version_of(1), 3u);
  EXPECT_EQ(s.find(1)->data, Bytes{3});
  s.apply(1, 4, Bytes{4});
  EXPECT_EQ(s.version_of(1), 4u);
}

TEST(ReplicaStore, ApplyCreatesUnknownObject) {
  ReplicaStore s;
  s.apply(7, 1, Bytes{1});
  EXPECT_EQ(s.version_of(7), 1u);
}

TEST(ReplicaStore, ProtectionLifecycle) {
  ReplicaStore s;
  s.seed(1, Bytes{}, 1);
  s.protect(1, 100, /*now=*/1);
  EXPECT_TRUE(s.protected_against(1, 200));
  EXPECT_FALSE(s.protected_against(1, 100));  // own protection
  // Re-protect by the same transaction is idempotent.
  s.protect(1, 100, /*now=*/1);
  // Another transaction may not steal the protection.
  EXPECT_THROW(s.protect(1, 200, /*now=*/1), qrdtm::InvariantError);
  s.unprotect(1, 100);
  EXPECT_FALSE(s.protected_against(1, 200));
}

TEST(ReplicaStore, UnprotectByNonHolderIsNoOp) {
  ReplicaStore s;
  s.seed(1, Bytes{}, 1);
  s.protect(1, 100, /*now=*/1);
  s.unprotect(1, 999);  // a stale abort-confirm from another transaction
  EXPECT_TRUE(s.protected_against(1, 200));
}

TEST(ReplicaStore, PrPwTracking) {
  ReplicaStore s;
  s.seed(1, Bytes{}, 1);
  s.seed(2, Bytes{}, 1);
  s.add_reader(1, 100);
  s.add_reader(2, 100);
  s.add_writer(2, 100);
  s.add_reader(1, 200);
  EXPECT_EQ(s.find(1)->pr.size(), 2u);
  EXPECT_EQ(s.find(2)->pw.size(), 1u);
  EXPECT_EQ(s.tracked_txn_entries(), 4u);

  s.drop_txn(100);
  EXPECT_EQ(s.find(1)->pr.size(), 1u);
  EXPECT_EQ(s.find(2)->pr.size(), 0u);
  EXPECT_EQ(s.find(2)->pw.size(), 0u);
  EXPECT_EQ(s.tracked_txn_entries(), 1u);

  s.drop_txn(100);  // idempotent
  s.drop_txn(12345);  // unknown txn is fine
}

TEST(ReplicaStore, NullObjectIdRejected) {
  ReplicaStore s;
  EXPECT_THROW(s.seed(kNullObject, Bytes{}), qrdtm::InvariantError);
}

}  // namespace
}  // namespace qrdtm::store
