// Unit tests for stats helpers (common/stats.h).
#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace qrdtm {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Percentiles, MedianAndTails) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_NEAR(p.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(p.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(p.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(p.percentile(99), 99.01, 0.1);
}

TEST(Percentiles, InterleavedAddAndQuery) {
  Percentiles p;
  p.add(3);
  p.add(1);
  EXPECT_NEAR(p.percentile(50), 2.0, 1e-9);
  p.add(2);
  EXPECT_NEAR(p.percentile(50), 2.0, 1e-9);
}

TEST(PctChange, Basics) {
  EXPECT_DOUBLE_EQ(pct_change(150, 100), 50.0);
  EXPECT_DOUBLE_EQ(pct_change(50, 100), -50.0);
  // Zero baseline: the ratio is undefined, so NaN (printers show "n/a"),
  // never a fake 0 % that hides a missing baseline.
  EXPECT_TRUE(std::isnan(pct_change(100, 0)));
  EXPECT_TRUE(std::isnan(pct_change(0, 0)));
}

}  // namespace
}  // namespace qrdtm
